"""Tests for interconnect topologies and bandwidth probing (Fig 9/10)."""

import pytest

from repro.cluster import LinkType, Topology, system_i, system_ii, system_iii
from repro.cluster.bandwidth import (
    measure_allreduce_bandwidth,
    measure_broadcast_bandwidth,
    measure_p2p_bandwidth,
)
from repro.utils.units import GB, MB


class TestTopology:
    def test_direct_link(self):
        t = Topology()
        t.add_device("a")
        t.add_device("b")
        t.add_link("a", "b", LinkType.NVLINK)
        assert t.has_direct_link("a", "b")
        assert t.link_type("a", "b") == LinkType.NVLINK

    def test_path_bottleneck(self):
        t = Topology()
        for n in ("a", "b", "c"):
            t.add_device(n)
        t.add_link("a", "b", LinkType.NVLINK)
        t.add_link("b", "c", LinkType.PCIE)
        bw, lat = t.path_stats("a", "c")
        assert bw == pytest.approx(16 * GB)  # PCIe limits the path
        assert lat > 0

    def test_self_bandwidth_infinite(self):
        t = Topology.fully_connected(["a", "b"])
        assert t.bandwidth("a", "a") == float("inf")

    def test_no_path_raises(self):
        t = Topology()
        t.add_device("a")
        t.add_device("b")
        with pytest.raises(ValueError):
            t.path_stats("a", "b")

    def test_custom_bandwidth_override(self):
        t = Topology()
        t.add_device("a")
        t.add_device("b")
        t.add_link("a", "b", LinkType.NVLINK, bandwidth=1.0)
        assert t.bandwidth("a", "b") == 1.0

    def test_ring_bandwidth_uses_ring_edges_only(self):
        t = Topology.pairwise_nvlink(["g0", "g1", "g2", "g3"])
        # ring g0-g1-g2-g3-g0 crosses PCIe at g1-g2 and g3-g0
        assert t.ring_bandwidth(["g0", "g1", "g2", "g3"]) == pytest.approx(16 * GB)
        # pair ring stays on NVLink
        assert t.ring_bandwidth(["g0", "g1"]) > 100 * GB

    def test_min_bandwidth_all_pairs(self):
        t = Topology.pairwise_nvlink(["g0", "g1", "g2", "g3"])
        assert t.min_bandwidth(["g0", "g1"]) > t.min_bandwidth(["g0", "g2"])

    def test_fully_connected_builder(self):
        t = Topology.fully_connected([f"g{i}" for i in range(4)])
        for i in range(4):
            for j in range(i + 1, 4):
                assert t.has_direct_link(f"g{i}", f"g{j}")

    def test_multi_node_builder(self):
        t = Topology.multi_node([["a0", "a1"], ["b0", "b1"], ["c0", "c1"]])
        assert t.link_type("a0", "a1") == LinkType.NVLINK
        # cross-node routes through gateways at the NIC rate
        assert t.bandwidth("a1", "b1") == pytest.approx(25 * GB)

    def test_dragonfly_grouping(self):
        nodes = [[f"n{i}"] for i in range(8)]
        t = Topology.multi_node(nodes, dragonfly_group_size=4)
        # intra-group gateways directly linked
        assert t.has_direct_link("n0", "n1")
        # inter-group: only the group leads
        assert t.has_direct_link("n0", "n4")
        assert not t.has_direct_link("n1", "n5")
        # but a path exists
        assert t.bandwidth("n1", "n5") > 0


class TestIslandsAndRings:
    """Topology-aware helpers behind the collective algorithm layer."""

    def test_islands_system_ii_nvlink_pairs(self):
        c = system_ii()
        groups = c.topology.islands(c.gpu_names())
        assert groups == [
            ["gpu0", "gpu1"], ["gpu2", "gpu3"], ["gpu4", "gpu5"], ["gpu6", "gpu7"],
        ]

    def test_islands_system_iii_nodes(self):
        c = system_iii(n_nodes=4)
        groups = c.topology.islands(c.gpu_names())
        assert len(groups) == 4
        assert all(len(g) == 4 for g in groups)

    def test_islands_uniform_single(self):
        t = Topology.fully_connected(["a", "b", "c", "d"])
        assert t.islands(["a", "b", "c", "d"]) == [["a", "b", "c", "d"]]

    def test_islands_ratio_one_keeps_only_fastest(self):
        c = system_ii()
        # with ratio 1.0 only full-NVLink pairs merge — same as default here
        assert len(c.topology.islands(c.gpu_names(), ratio=1.0)) == 4

    def test_islands_subgroup(self):
        c = system_ii()
        groups = c.topology.islands(["gpu0", "gpu1", "gpu4"])
        assert groups == [["gpu0", "gpu1"], ["gpu4"]]

    def test_order_ring_preserves_uniform_order(self):
        t = Topology.fully_connected(["a", "b", "c", "d"])
        assert t.order_ring(["a", "b", "c", "d"]) == ["a", "b", "c", "d"]
        assert t.order_ring(["d", "b", "a", "c"]) == ["d", "b", "a", "c"]

    def test_order_ring_hugs_nvlink_pairs(self):
        c = system_ii()
        # an interleaved order is rearranged so NVLink partners are adjacent
        order = c.topology.order_ring(
            ["gpu0", "gpu2", "gpu1", "gpu3"]
        )
        i0, i1 = order.index("gpu0"), order.index("gpu1")
        assert abs(i0 - i1) in (1, 3)  # adjacent on the ring (mod wrap)

    def test_ring_stats_contention_penalty(self):
        """Two ring hops sharing one directed physical edge halve its
        bandwidth; the natural preset orders keep multiplicity 1."""
        t = Topology()
        for n in ("a", "b", "c"):
            t.add_device(n)
        t.add_link("a", "b", LinkType.PCIE)
        t.add_link("b", "c", LinkType.PCIE)
        # ring a-b-c-a: hop c->a routes through b, reusing edges c-b and b-a?
        # c->a shortest path is c-b-a, so directed edges (c,b) and (b,a) are
        # used once each, and (a,b)/(b,c) once each: no sharing, full bw
        bw_chain, _ = t.ring_stats(["a", "b", "c"])
        assert bw_chain == pytest.approx(16 * GB)
        # ring a-c-b-a: hop a->c routes a-b-c, hop c->b uses (c,b), hop
        # b->a uses (b,a): directed edge (b,c) used by a->c only... but
        # a->c and the return b->a share no directed edge either; use a
        # 4-node chain where sharing is forced
        t2 = Topology()
        for n in ("w", "x", "y", "z"):
            t2.add_device(n)
        t2.add_link("w", "x", LinkType.PCIE)
        t2.add_link("x", "y", LinkType.PCIE)
        t2.add_link("y", "z", LinkType.PCIE)
        # ring w-y-x-z-w: w->y (w,x)(x,y); y->x (y,x); x->z (x,y)(y,z);
        # z->w (z,y)(y,x)(x,w) -> directed (x,y) used 2x, (y,x) used 2x
        bw_scrambled, _ = t2.ring_stats(["w", "y", "x", "z"])
        bw_natural, _ = t2.ring_stats(["w", "x", "y", "z"])
        assert bw_scrambled < bw_natural

    def test_version_bumps_on_link_changes(self):
        c = system_ii()
        t = c.topology
        v0 = t.version
        t.scale_link("gpu0", "gpu1", 0.5)
        assert t.version == v0 + 1
        t.restore_links()
        assert t.version == v0 + 2

    def test_caches_invalidate_on_scale(self):
        c = system_ii()
        t = c.topology
        names = c.gpu_names()
        before = t.islands(names)
        bw_before, _ = t.ring_stats(t.order_ring(names))
        for a, b in (("gpu0", "gpu1"), ("gpu2", "gpu3"),
                     ("gpu4", "gpu5"), ("gpu6", "gpu7")):
            t.scale_link(a, b, 0.01)  # NVLink now slower than PCIe
        after = t.islands(names)
        assert after != before  # islands re-detected on the degraded fabric
        t.restore_links()
        assert t.islands(names) == before


class TestBandwidthProbe:
    """The Fig 10 analogue: System I sustains NVLink rates everywhere;
    System II collapses for distant pairs / wide groups."""

    def test_p2p_system_i_uniform(self):
        c = system_i()
        b01 = measure_p2p_bandwidth(c, 0, 1)
        b07 = measure_p2p_bandwidth(c, 0, 7)
        assert b01 == pytest.approx(b07, rel=0.01)
        assert b01 > 100 * GB

    def test_p2p_system_ii_cliff(self):
        c = system_ii()
        adjacent = measure_p2p_bandwidth(c, 0, 1)
        distant = measure_p2p_bandwidth(c, 0, 2)
        assert adjacent / distant > 5  # the paper reports 184 -> 15 GB/s

    def test_broadcast_system_i_group_invariant(self):
        c = system_i()
        b2 = measure_broadcast_bandwidth(c, [0, 1])
        b8 = measure_broadcast_bandwidth(c, list(range(8)))
        assert b8 > 0.5 * b2  # stays near NVLink rate

    def test_broadcast_system_ii_group_cliff(self):
        c = system_ii()
        pair = measure_broadcast_bandwidth(c, [0, 1])
        group = measure_broadcast_bandwidth(c, list(range(8)))
        assert pair / group > 5

    def test_probe_size_effect_small_message(self):
        c = system_i()
        big = measure_p2p_bandwidth(c, 0, 1, nbytes=125 * MB)
        small = measure_p2p_bandwidth(c, 0, 1, nbytes=1024)
        assert big > small  # latency dominates small messages

    def test_allreduce_busbw_auto_recovers_system_ii(self):
        """The Fig 10 headline with the algorithm layer on: auto selection
        lifts System II group allreduce well above the flat-ring floor."""
        c = system_ii()
        ranks = list(range(8))
        ring = measure_allreduce_bandwidth(c, ranks, algorithm="ring")
        auto = measure_allreduce_bandwidth(c, ranks, algorithm="auto")
        assert auto > 2 * ring
