"""Tests for interconnect topologies and bandwidth probing (Fig 9/10)."""

import pytest

from repro.cluster import LinkType, Topology, system_i, system_ii
from repro.cluster.bandwidth import measure_broadcast_bandwidth, measure_p2p_bandwidth
from repro.utils.units import GB, MB


class TestTopology:
    def test_direct_link(self):
        t = Topology()
        t.add_device("a")
        t.add_device("b")
        t.add_link("a", "b", LinkType.NVLINK)
        assert t.has_direct_link("a", "b")
        assert t.link_type("a", "b") == LinkType.NVLINK

    def test_path_bottleneck(self):
        t = Topology()
        for n in ("a", "b", "c"):
            t.add_device(n)
        t.add_link("a", "b", LinkType.NVLINK)
        t.add_link("b", "c", LinkType.PCIE)
        bw, lat = t.path_stats("a", "c")
        assert bw == pytest.approx(16 * GB)  # PCIe limits the path
        assert lat > 0

    def test_self_bandwidth_infinite(self):
        t = Topology.fully_connected(["a", "b"])
        assert t.bandwidth("a", "a") == float("inf")

    def test_no_path_raises(self):
        t = Topology()
        t.add_device("a")
        t.add_device("b")
        with pytest.raises(ValueError):
            t.path_stats("a", "b")

    def test_custom_bandwidth_override(self):
        t = Topology()
        t.add_device("a")
        t.add_device("b")
        t.add_link("a", "b", LinkType.NVLINK, bandwidth=1.0)
        assert t.bandwidth("a", "b") == 1.0

    def test_ring_bandwidth_uses_ring_edges_only(self):
        t = Topology.pairwise_nvlink(["g0", "g1", "g2", "g3"])
        # ring g0-g1-g2-g3-g0 crosses PCIe at g1-g2 and g3-g0
        assert t.ring_bandwidth(["g0", "g1", "g2", "g3"]) == pytest.approx(16 * GB)
        # pair ring stays on NVLink
        assert t.ring_bandwidth(["g0", "g1"]) > 100 * GB

    def test_min_bandwidth_all_pairs(self):
        t = Topology.pairwise_nvlink(["g0", "g1", "g2", "g3"])
        assert t.min_bandwidth(["g0", "g1"]) > t.min_bandwidth(["g0", "g2"])

    def test_fully_connected_builder(self):
        t = Topology.fully_connected([f"g{i}" for i in range(4)])
        for i in range(4):
            for j in range(i + 1, 4):
                assert t.has_direct_link(f"g{i}", f"g{j}")

    def test_multi_node_builder(self):
        t = Topology.multi_node([["a0", "a1"], ["b0", "b1"], ["c0", "c1"]])
        assert t.link_type("a0", "a1") == LinkType.NVLINK
        # cross-node routes through gateways at the NIC rate
        assert t.bandwidth("a1", "b1") == pytest.approx(25 * GB)

    def test_dragonfly_grouping(self):
        nodes = [[f"n{i}"] for i in range(8)]
        t = Topology.multi_node(nodes, dragonfly_group_size=4)
        # intra-group gateways directly linked
        assert t.has_direct_link("n0", "n1")
        # inter-group: only the group leads
        assert t.has_direct_link("n0", "n4")
        assert not t.has_direct_link("n1", "n5")
        # but a path exists
        assert t.bandwidth("n1", "n5") > 0


class TestBandwidthProbe:
    """The Fig 10 analogue: System I sustains NVLink rates everywhere;
    System II collapses for distant pairs / wide groups."""

    def test_p2p_system_i_uniform(self):
        c = system_i()
        b01 = measure_p2p_bandwidth(c, 0, 1)
        b07 = measure_p2p_bandwidth(c, 0, 7)
        assert b01 == pytest.approx(b07, rel=0.01)
        assert b01 > 100 * GB

    def test_p2p_system_ii_cliff(self):
        c = system_ii()
        adjacent = measure_p2p_bandwidth(c, 0, 1)
        distant = measure_p2p_bandwidth(c, 0, 2)
        assert adjacent / distant > 5  # the paper reports 184 -> 15 GB/s

    def test_broadcast_system_i_group_invariant(self):
        c = system_i()
        b2 = measure_broadcast_bandwidth(c, [0, 1])
        b8 = measure_broadcast_bandwidth(c, list(range(8)))
        assert b8 > 0.5 * b2  # stays near NVLink rate

    def test_broadcast_system_ii_group_cliff(self):
        c = system_ii()
        pair = measure_broadcast_bandwidth(c, [0, 1])
        group = measure_broadcast_bandwidth(c, list(range(8)))
        assert pair / group > 5

    def test_probe_size_effect_small_message(self):
        c = system_i()
        big = measure_p2p_bandwidth(c, 0, 1, nbytes=125 * MB)
        small = measure_p2p_bandwidth(c, 0, 1, nbytes=1024)
        assert big > small  # latency dominates small messages
