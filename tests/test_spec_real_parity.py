"""Spec-vs-real execution parity for every collective.

The simulator's promise is that a spec-mode (shape-only) program behaves
exactly like the materialized one: same result shapes/dtypes per rank,
and — crucially for debugging billion-parameter configs that only ever run
in spec mode — the *same errors* for invalid payloads.  These tests pin
that contract: explicit regressions for the bugs fixed in this PR (silent
non-axis-dim acceptance in ``_concat_axis``, silently-ignored invalid
reduce ops, op-less ``_split_axis`` messages) plus a hypothesis property
suite sweeping random shapes/dtypes over every collective in both modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import system_i, system_ii, system_iii, uniform_cluster
from repro.comm.communicator import Communicator
from repro.comm.cost import CostModel
from repro.comm.payload import SpecArray
from repro.runtime import SpmdRuntime
from repro.runtime.errors import RemoteRankError

WORLD = 4

#: every selectable family plus the selector itself
ALGOS = ("ring", "tree", "hierarchical", "auto")

DTYPES = ["float32", "float16", "int32"]


def _payload(spec: bool, shape, dtype, seed: int):
    if spec:
        return SpecArray(tuple(shape), dtype)
    rng = np.random.default_rng(seed)
    if np.dtype(dtype).kind in "iu":
        return rng.integers(0, 100, size=shape, dtype=dtype)
    return rng.standard_normal(shape).astype(dtype)


def _describe(result):
    """Shape/dtype signature of a per-rank result (payloads, lists, None)."""
    if result is None:
        return None
    if isinstance(result, list):
        return [_describe(r) for r in result]
    return (tuple(result.shape), np.dtype(result.dtype).name)


def _run_both_modes(make_args, collective, comm_algorithm="ring"):
    """Run ``collective(comm, *make_args(spec, rank))`` in real and spec
    mode; return the two outcomes as comparable signatures."""

    def outcome(spec: bool):
        rt = SpmdRuntime(uniform_cluster(WORLD), comm_algorithm=comm_algorithm)

        def prog(ctx):
            comm = Communicator.world(ctx)
            return collective(comm, *make_args(spec, ctx.rank))

        try:
            return ("ok", [_describe(r) for r in rt.run(prog, materialize=not spec)])
        except RemoteRankError as e:
            return ("error", type(e.cause).__name__, str(e.cause))

    return outcome(spec=False), outcome(spec=True)


def _assert_parity(make_args, collective):
    real, spec = _run_both_modes(make_args, collective)
    assert real == spec, f"\nreal: {real}\nspec: {spec}"
    return real


# -- regression tests for the fixed parity bugs ---------------------------


class TestConcatDimValidation:
    """all_gather/gather must reject mismatched non-concat dims in BOTH
    modes (spec mode used to silently accept them)."""

    @pytest.mark.parametrize("op", ["all_gather", "gather"])
    def test_mismatched_non_axis_dim_rejected_identically(self, op):
        def make_args(spec, rank):
            # rank 2 has a different trailing dim
            shape = (2, 5) if rank == 2 else (2, 4)
            return (_payload(spec, shape, "float32", rank),)

        real = _assert_parity(make_args, getattr(Communicator, op))
        assert real[0] == "error"
        assert real[1] == "ValueError"
        assert op in real[2] and "non-concat" in real[2]

    @pytest.mark.parametrize("op", ["all_gather", "gather"])
    def test_mismatched_ndim_rejected_identically(self, op):
        def make_args(spec, rank):
            shape = (2, 4, 1) if rank == 0 else (2, 4)
            return (_payload(spec, shape, "float32", rank),)

        real = _assert_parity(make_args, getattr(Communicator, op))
        assert real[0] == "error" and real[1] == "ValueError"

    def test_varying_concat_dim_still_allowed(self):
        def make_args(spec, rank):
            return (_payload(spec, (rank + 1, 3), "float32", rank),)

        real = _assert_parity(make_args, Communicator.all_gather)
        assert real[0] == "ok"
        assert real[1][0] == ((1 + 2 + 3 + 4, 3), "float32")


class TestReduceOpValidation:
    """Invalid reduce ops used to raise a raw KeyError in real mode and be
    silently accepted in spec mode; now both raise the same ValueError."""

    @pytest.mark.parametrize("method,extra", [
        ("all_reduce", ()),
        ("reduce", (0,)),
        ("reduce_scatter", (0,)),
    ])
    def test_invalid_op_rejected_identically(self, method, extra):
        def make_args(spec, rank):
            return (_payload(spec, (4, 4), "float32", rank),) + extra + ("avg",)

        real = _assert_parity(make_args, getattr(Communicator, method))
        assert real[0] == "error"
        assert real[1] == "ValueError"
        assert "'avg'" in real[2] and "max" in real[2] and "sum" in real[2]
        assert method in real[2]

    @pytest.mark.parametrize("op", ["sum", "max", "min", "prod"])
    def test_valid_ops_accepted(self, op):
        def make_args(spec, rank):
            return (_payload(spec, (4,), "float32", rank), op)

        real = _assert_parity(make_args, Communicator.all_reduce)
        assert real == ("ok", [((4,), "float32")] * WORLD)


class TestSplitAxisMessages:
    """Divisibility failures must name the collective that raised them."""

    @pytest.mark.parametrize("method,name", [
        ("reduce_scatter", "reduce_scatter"),
        ("scatter", "scatter"),
    ])
    def test_indivisible_axis_names_op(self, method, name):
        def make_args(spec, rank):
            if method == "scatter":
                payload = (
                    _payload(spec, (6, 2), "float32", rank) if rank == 0 else None
                )
                return (payload,)
            return (_payload(spec, (6, 2), "float32", rank),)

        real = _assert_parity(make_args, getattr(Communicator, method))
        assert real[0] == "error" and real[1] == "ValueError"
        assert real[2].startswith(name + ":")
        assert "not divisible" in real[2]


# -- property-based sweep --------------------------------------------------


def _round_up(n, k):
    return ((n + k - 1) // k) * k


@st.composite
def collective_cases(draw):
    """A (collective, make_args) pair over random shapes/dtypes, sometimes
    with a deliberately broken payload on one rank."""
    kind = draw(st.sampled_from([
        "all_reduce", "all_gather", "reduce_scatter", "broadcast",
        "reduce", "scatter", "gather", "ring_pass",
    ]))
    dtype = draw(st.sampled_from(DTYPES))
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, 6)) for _ in range(ndim))
    axis = draw(st.integers(0, ndim - 1))
    break_rank = draw(st.sampled_from([None, 1, 3]))

    if kind in ("reduce_scatter", "scatter") and break_rank is None:
        # make the split axis divisible so the clean case succeeds
        shape = shape[:axis] + (_round_up(shape[axis], WORLD),) + shape[axis + 1:]

    def make_args(spec, rank):
        s = shape
        if break_rank is not None and rank == break_rank:
            s = shape[:axis] + (shape[axis] + 1,) + shape[axis + 1:]
        payload = _payload(spec, s, dtype, rank)
        if kind in ("broadcast", "scatter"):
            root_payload = payload if rank == 0 else None
            return (root_payload, 0) + ((axis,) if kind == "scatter" else ())
        if kind == "all_reduce":
            return (payload, "sum")
        if kind in ("reduce",):
            return (payload, 0, "sum")
        if kind == "reduce_scatter":
            return (payload, axis, "sum")
        if kind in ("all_gather",):
            return (payload, axis)
        if kind == "gather":
            return (payload, 0, axis)
        if kind == "ring_pass":
            return (payload, 1)
        raise AssertionError(kind)

    return kind, make_args


class TestPropertyParity:
    @settings(max_examples=40, deadline=None)
    @given(collective_cases())
    def test_shapes_and_errors_identical_across_modes(self, case):
        _kind, make_args = case
        _assert_parity(make_args, getattr(Communicator, _kind))

    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(DTYPES),
        st.integers(1, 5),
        st.integers(1, 4),
    )
    def test_all_to_all_parity(self, dtype, a, b):
        def make_args(spec, rank):
            chunks = [
                _payload(spec, (a, b), dtype, rank * WORLD + j)
                for j in range(WORLD)
            ]
            return (chunks,)

        real = _assert_parity(make_args, Communicator.all_to_all)
        assert real[0] == "ok"
        assert real[1][0] == [((a, b), dtype)] * WORLD


# -- algorithm-independence sweep ------------------------------------------


def _real_results(make_args, collective, algo):
    """Raw per-rank real-mode results on System II (non-trivial islands:
    NVLink pairs (0,1)/(2,3) bridged by PCIe at world size 4)."""
    rt = SpmdRuntime(system_ii(), world_size=WORLD, comm_algorithm=algo)

    def prog(ctx):
        comm = Communicator.world(ctx)
        return collective(comm, *make_args(False, ctx.rank))

    return rt.run(prog)


def _flatten(result):
    if result is None:
        return []
    if isinstance(result, list):
        return [a for r in result for a in _flatten(r)]
    return [result]


@pytest.mark.comm_algo
class TestAlgorithmParity:
    """The algorithm layer only re-prices collectives: results, shapes and
    dtypes must be bitwise identical under every algorithm in both modes."""

    @settings(max_examples=25, deadline=None)
    @given(collective_cases())
    def test_modes_agree_under_every_algorithm(self, case):
        kind, make_args = case
        signatures = []
        for algo in ALGOS:
            real, spec = _run_both_modes(
                make_args, getattr(Communicator, kind), comm_algorithm=algo
            )
            assert real == spec, f"{algo}:\nreal: {real}\nspec: {spec}"
            signatures.append(real)
        assert all(s == signatures[0] for s in signatures[1:]), (
            f"{kind}: outcome varies across algorithms: {signatures}"
        )

    @pytest.mark.parametrize("kind,args", [
        ("all_reduce", ("sum",)),
        ("all_reduce", ("max",)),
        ("all_gather", (0,)),
        ("reduce_scatter", (0, "sum")),
        ("broadcast", ()),
        ("reduce", (0, "sum")),
    ])
    def test_real_results_bitwise_identical_across_algorithms(self, kind, args):
        def make_args(spec, rank):
            payload = _payload(spec, (WORLD, 8), "float32", rank)
            if kind == "broadcast":
                return ((payload if rank == 0 else None), 0)
            return (payload,) + args

        baseline = None
        for algo in ALGOS:
            results = _real_results(make_args, getattr(Communicator, kind), algo)
            flat = [_flatten(r) for r in results]
            if baseline is None:
                baseline = flat
                continue
            for rank, (got, want) in enumerate(zip(flat, baseline)):
                assert len(got) == len(want)
                for g, w in zip(got, want):
                    assert g.dtype == w.dtype
                    np.testing.assert_array_equal(
                        g, w, err_msg=f"{kind}/{algo} rank {rank}"
                    )


@pytest.mark.comm_algo
class TestSelectorInvariant:
    """Cost-side contract: the auto-selected algorithm is never costlier
    than the flat ring, for any sampled op/size/group/topology."""

    @settings(max_examples=80, deadline=None)
    @given(
        st.sampled_from(["allreduce", "allgather", "reduce_scatter",
                         "broadcast", "reduce"]),
        st.sampled_from(["uniform", "system_i", "system_ii", "system_iii"]),
        st.integers(2, 8),
        st.integers(0, 27),
        st.integers(1, 7),
    )
    def test_auto_cost_at_most_ring(self, op, topo, group, exp, mant):
        cluster = {
            "uniform": lambda: uniform_cluster(8),
            "system_i": system_i,
            "system_ii": system_ii,
            "system_iii": system_iii,
        }[topo]()
        model = CostModel(cluster)
        ranks = list(range(min(group, cluster.world_size)))
        nbytes = mant << exp  # 1 B .. ~900 MB, uneven mantissas
        price = getattr(model, op)
        auto = price(ranks, nbytes, algorithm="auto")
        ring = price(ranks, nbytes, algorithm="ring")
        assert auto.seconds <= ring.seconds * (1 + 1e-12)
        assert auto.algorithm in ("ring", "tree", "hierarchical")

# -- sanitizer signature properties ----------------------------------------


from repro.sanitize import (  # noqa: E402
    CollectiveMismatch,
    CommSanitizer,
    call_signature,
)


@pytest.mark.sanitize
class TestSanitizerSignatureProperty:
    """The sanitizer's matching contract: member ranks' call signatures are
    identical iff their op streams match — payload determinants (op, shape,
    dtype, reduce op, root) all feed the signature, while legitimately
    rank-varying parts (the concat-axis extent) are wildcarded out."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["all_reduce", "reduce", "reduce_scatter"]),
        st.sampled_from(DTYPES),
        st.lists(st.integers(1, 6), min_size=1, max_size=3),
        st.sampled_from(["sum", "max", "min", "prod"]),
        st.sampled_from(["shape", "dtype", "op", "none"]),
    )
    def test_reduce_family_signature_iff_call_matches(
        self, kind, dtype, shape, reduce_op, perturb
    ):
        shape = tuple(shape)
        base = call_signature(
            kind, SpecArray(shape, dtype), reduce_op=reduce_op, root=0, axis=0
        )
        # identical calls on another rank always produce the identical string
        assert base == call_signature(
            kind, SpecArray(shape, dtype), reduce_op=reduce_op, root=0, axis=0
        )
        if perturb == "none":
            return
        other_shape = shape[:-1] + (shape[-1] + 1,)
        other_dtype = "float64" if dtype != "float64" else "int32"
        other_op = "max" if reduce_op != "max" else "sum"
        perturbed = call_signature(
            kind,
            SpecArray(other_shape if perturb == "shape" else shape,
                      other_dtype if perturb == "dtype" else dtype),
            reduce_op=other_op if perturb == "op" else reduce_op,
            root=0, axis=0,
        )
        assert perturbed != base

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(["all_gather", "gather"]),
        st.sampled_from(DTYPES),
        st.lists(st.integers(1, 6), min_size=1, max_size=3),
        st.integers(0, 2),
        st.integers(1, 5),
    )
    def test_concat_axis_extent_wildcarded(self, kind, dtype, shape, axis,
                                           delta):
        shape = tuple(shape)
        axis = axis % len(shape)
        grown = shape[:axis] + (shape[axis] + delta,) + shape[axis + 1:]
        a = call_signature(kind, SpecArray(shape, dtype), axis=axis, root=0)
        b = call_signature(kind, SpecArray(grown, dtype), axis=axis, root=0)
        # different extents along the concat axis: same signature
        assert a == b
        if len(shape) > 1:
            other_axis = (axis + 1) % len(shape)
            off = shape[:other_axis] + (shape[other_axis] + delta,) \
                + shape[other_axis + 1:]
            # different extents anywhere else: different signature
            assert call_signature(
                kind, SpecArray(off, dtype), axis=axis, root=0
            ) != a

    @settings(max_examples=12, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["all_reduce", "all_gather", "barrier"]),
                st.integers(1, 5),
            ),
            min_size=1, max_size=3,
        ),
        st.one_of(st.none(), st.integers(0, WORLD - 1)),
        st.integers(0, 2),
    )
    def test_run_raises_iff_streams_diverge(self, stream, bad_rank, bad_step):
        """End-to-end: a random identical op stream verifies clean; the same
        stream with one rank's op perturbed at one step raises a typed
        mismatch naming that rank."""
        bad_step = bad_step % len(stream)

        def prog(ctx):
            comm = Communicator.world(ctx)
            for step, (kind, n) in enumerate(stream):
                if ctx.rank == bad_rank and step == bad_step:
                    n += 1  # divergent payload extent
                    if kind == "barrier":
                        kind = "all_reduce"  # divergent op
                x = np.ones(n, dtype=np.float32)
                if kind == "all_reduce":
                    comm.all_reduce(x)
                elif kind == "all_gather":
                    comm.all_gather(x)
                else:
                    comm.barrier()
            return "ok"

        san = CommSanitizer()
        rt = SpmdRuntime(uniform_cluster(WORLD), sanitize=san)
        if bad_rank is None:
            assert rt.run(prog) == ["ok"] * WORLD
            assert san.summary()["mismatches"] == 0
            assert san.summary()["rounds_checked"] == len(stream)
        else:
            kind = stream[bad_step][0]
            if kind == "all_gather":
                # only the concat extent differs: legitimately allowed
                assert rt.run(prog) == ["ok"] * WORLD
                return
            with pytest.raises(RemoteRankError) as ei:
                rt.run(prog)
            cause = ei.value.__cause__
            assert isinstance(cause, CollectiveMismatch)
            assert cause.divergent_ranks == (bad_rank,)
