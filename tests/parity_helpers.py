"""Shared machinery for TP-vs-serial parity tests.

Every tensor-parallel mode must reproduce the serial TransformerLayer
bit-for-bit (up to float32 tolerance): outputs, input gradients, and weight
gradient *shards*.  These helpers build the serial reference once and
return the slices each mode's ranks should hold.
"""

from __future__ import annotations

import numpy as np

from repro.nn import TransformerLayer
from repro.tensor import Tensor

H, NH, B, S, RATIO = 16, 4, 8, 6, 2
SEED = 7
ATOL = 1e-4


def make_input(seed: int = 42) -> np.ndarray:
    return (
        np.random.default_rng(seed).standard_normal((B, S, H)).astype(np.float32)
    )


def serial_reference(x_global: np.ndarray):
    """Run the serial layer; return its key outputs and grads."""
    layer = TransformerLayer(H, NH, mlp_ratio=RATIO, rng=np.random.default_rng(SEED))
    x = Tensor(x_global.copy(), requires_grad=True)
    y = layer(x)
    y.sum().backward()
    return {
        "out": y.numpy().copy(),
        "x_grad": x.grad.numpy().copy(),
        "mlp_w1_grad": layer.mlp.dense_1.weight.grad.numpy().copy(),
        "qkv_w_grad": layer.attention.qkv.weight.grad.numpy().copy(),
        "ln1_gamma_grad": layer.norm_1.gamma.grad.numpy().copy(),
    }


def block(arr: np.ndarray, axis: int, parts: int, index: int) -> np.ndarray:
    n = arr.shape[axis] // parts
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(index * n, (index + 1) * n)
    return arr[tuple(sl)]
