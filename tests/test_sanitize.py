"""SPMD sanitizer tests: cross-rank mismatch/desync detection, payload
checksums, shared-buffer race detection, record/replay conformance, and
the zero-overhead-when-disabled guarantee."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.cluster import uniform_cluster
from repro.comm.communicator import Communicator
from repro.config import Config, SanitizeConfig
from repro.faults import FaultPlan
from repro.runtime import SpmdRuntime
from repro.runtime.errors import RemoteRankError
from repro.sanitize import (
    ChecksumMismatch,
    CollectiveDesync,
    CollectiveMismatch,
    CommSanitizer,
    ReplayDivergence,
    first_divergence,
    load_golden,
    payload_checksum,
)

pytestmark = pytest.mark.sanitize

#: far above any test's wall time — every desync must be *diagnosed*, never
#: aged out by the deadlock timeout
LONG_TIMEOUT = 300.0


def _run(world, fn, *, san=None, plan=None, tracer=None, cluster=None):
    rt = SpmdRuntime(
        cluster if cluster is not None else uniform_cluster(world),
        world, sanitize=san, fault_plan=plan, tracer=tracer,
        deadlock_timeout=LONG_TIMEOUT,
    )
    return rt, rt.run(fn)


def _cause(excinfo):
    cause = excinfo.value.__cause__
    assert cause is not None, "RemoteRankError should chain the root cause"
    return cause


# ---------------------------------------------------------------------------
# mismatch detection


class TestMismatchDetection:
    def test_wrong_op_raises_mismatch(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            x = np.ones(4)
            if ctx.rank == 1:
                return comm.all_gather(x)
            return comm.all_reduce(x)

        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveMismatch)
        assert cause.divergent_ranks == (1,)
        assert "all_gather" in str(cause) and "all_reduce" in str(cause)

    def test_wrong_shape_raises_mismatch(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            n = 6 if ctx.rank == 2 else 4
            return comm.all_reduce(np.ones(n))

        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveMismatch)
        assert cause.divergent_ranks == (2,)
        assert "shape=(6)" in str(cause) and "shape=(4)" in str(cause)

    def test_wrong_dtype_raises_mismatch(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            dt = np.float32 if ctx.rank == 3 else np.float64
            return comm.all_reduce(np.ones(4, dtype=dt))

        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveMismatch)
        assert cause.divergent_ranks == (3,)
        assert "float32" in str(cause) and "float64" in str(cause)

    def test_wrong_reduce_op_raises_mismatch(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            op = "max" if ctx.rank == 0 else "sum"
            return comm.all_reduce(np.ones(4), op=op)

        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveMismatch)
        assert cause.divergent_ranks == (0,)

    def test_wrong_broadcast_root_raises_mismatch(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            root = 1 if ctx.rank == 2 else 0
            x = np.arange(4.0) if ctx.rank == root else np.zeros(4)
            return comm.broadcast(x, root=root)

        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveMismatch)
        assert cause.divergent_ranks == (2,)

    def test_mismatch_names_callsite(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            n = 8 if ctx.rank == 1 else 4
            return comm.all_reduce(np.ones(n))  # <- the guilty line

        with pytest.raises(RemoteRankError) as ei:
            _run(2, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveMismatch)
        assert 1 in cause.callsites
        assert "test_sanitize.py" in cause.callsites[1]
        assert "in prog" in cause.callsites[1]

    def test_all_gather_extent_differences_allowed(self):
        # the concat axis legitimately differs across ranks: not a mismatch
        def prog(ctx):
            comm = Communicator.world(ctx)
            out = comm.all_gather(np.ones((ctx.rank + 1, 3)), axis=0)
            return out.shape

        _, results = _run(4, prog, san=CommSanitizer())
        assert results == [(10, 3)] * 4

    def test_clean_run_counts_rounds(self):
        san = CommSanitizer()

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones(4))
            comm.barrier()
            return comm.all_gather(np.full(2, float(ctx.rank)))

        _run(4, prog, san=san)
        assert san.summary()["rounds_checked"] == 3
        assert san.summary()["mismatches"] == 0

    def test_subgroup_mismatch_detected(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            sub = comm.subgroup([0, 1]) if ctx.rank < 2 else comm.subgroup([2, 3])
            n = 5 if ctx.rank == 3 else 4
            return sub.all_reduce(np.ones(n))

        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveMismatch)
        assert cause.divergent_ranks == (3,)
        assert tuple(cause.group_ranks) == (2, 3)


# ---------------------------------------------------------------------------
# desync detection (never a hang)


class TestDesyncDetection:
    def test_skipped_collective_raises_desync_fast(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones(4))
            if ctx.rank == 2:
                return "bailed early"
            return comm.all_reduce(np.ones(4))

        t0 = time.monotonic()
        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        elapsed = time.monotonic() - t0
        cause = _cause(ei)
        assert isinstance(cause, CollectiveDesync)
        assert cause.missing_ranks == (2,)
        # waiting set is the arrival snapshot at diagnosis time: whoever of
        # ranks 0/1/3 had already deposited when rank 2's exit was noticed
        assert set(cause.waiting_ranks) <= {0, 1, 3}
        assert cause.waiting_ranks
        assert "exited" in str(cause)
        # diagnosed by the sanitizer, not aged out by deadlock_timeout
        assert elapsed < LONG_TIMEOUT / 10

    def test_extra_collective_raises_desync(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.barrier()
            if ctx.rank == 0:
                comm.all_reduce(np.ones(2))  # nobody else joins
            return "done"

        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveDesync)
        assert cause.waiting_ranks == (0,)
        assert cause.op == "all_reduce"

    def test_cross_group_wait_cycle_diagnosed(self):
        # ranks 0+1 wait in the world group while ranks 2+3 are parked in a
        # subgroup collective that can complete only after the world one —
        # no rank has exited, yet the rounds can never fill
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank < 2:
                return comm.all_reduce(np.ones(2))
            sub = comm.subgroup([0, 2, 3])  # includes rank 0: cycle
            return sub.all_reduce(np.ones(2))

        t0 = time.monotonic()
        with pytest.raises(RemoteRankError) as ei:
            _run(4, prog, san=CommSanitizer())
        elapsed = time.monotonic() - t0
        cause = _cause(ei)
        assert isinstance(cause, (CollectiveDesync, CollectiveMismatch))
        assert elapsed < LONG_TIMEOUT / 10

    def test_desync_message_names_callsites(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 1:
                return None
            return comm.all_reduce(np.ones(4))

        with pytest.raises(RemoteRankError) as ei:
            _run(2, prog, san=CommSanitizer())
        cause = _cause(ei)
        assert isinstance(cause, CollectiveDesync)
        assert "test_sanitize.py" in str(cause)


# ---------------------------------------------------------------------------
# payload checksums


class TestChecksums:
    def test_p2p_checksums_clean(self):
        san = CommSanitizer(checksum=True)

        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.send(np.arange(8.0), dst=1)
                return None
            return comm.recv(src=0).sum()

        _, results = _run(2, prog, san=san)
        assert results[1] == 28.0
        assert san.summary()["p2p_checked"] == 1
        assert san.summary()["events"] == []

    def test_checksum_mismatch_is_logic_bug(self):
        # a direct producer/consumer hash disagreement with no injected
        # fault must be attributed to a logic bug
        san = CommSanitizer(checksum=True)
        san.note_send(0, 1, key="k", payload=np.arange(4.0))
        with pytest.raises(ChecksumMismatch) as ei:
            san.verify_recv(0, 1, key="k", payload=np.zeros(4))
        assert ei.value.injected is False
        assert "logic bug" in str(ei.value)

    def test_payload_checksum_distinguishes_bytes(self):
        a = payload_checksum(np.arange(4.0))
        b = payload_checksum(np.arange(4.0) + 1)
        c = payload_checksum(np.arange(4.0))
        assert a != b and a == c
        # shape is part of the identity even when bytes agree
        z = np.zeros(4)
        assert payload_checksum(z) != payload_checksum(z.reshape(2, 2))

    def test_algorithm_bitwise_parity(self):
        # identical program under ring/tree/hierarchical must produce
        # bitwise-identical collective results (asserted via result CRCs)
        def prog(ctx):
            comm = Communicator.world(ctx)
            x = np.linspace(0.0, 1.0, 16) * (ctx.rank + 1)
            comm.all_reduce(x)
            comm.all_gather(np.full(3, float(ctx.rank)))
            return comm.reduce_scatter(np.arange(8.0) + ctx.rank)

        digests = {}
        for algo in ("ring", "tree", "hierarchical"):
            san = CommSanitizer(checksum=True)
            rt = SpmdRuntime(
                uniform_cluster(4), 4, sanitize=san, comm_algorithm=algo,
            )
            rt.run(prog)
            digests[algo] = san.collective_digests(rank=0)
        assert digests["ring"] == digests["tree"] == digests["hierarchical"]
        assert all(rcrc is not None for _, _, rcrc in digests["ring"])


# ---------------------------------------------------------------------------
# chaos interaction (fault injector + sanitizer)


@pytest.mark.chaos
class TestChaosInteraction:
    def test_injected_corruption_attributed_and_healed(self):
        plan = FaultPlan().corrupt(src=0, dst=1, count=1)
        san = CommSanitizer(checksum=True)

        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.send(np.arange(8.0), dst=1)
                return None
            return comm.recv(src=0).sum()

        rt, results = _run(2, prog, san=san, plan=plan)
        # payload arrived intact after the retransmission
        assert results[1] == 28.0
        events = san.summary()["events"]
        assert len(events) == 1
        ev = events[0]
        assert (ev.kind, ev.src, ev.dst) == ("p2p", 0, 1)
        assert ev.injected and ev.healed
        # the retry-then-pass shows up in CommCounters
        counters = rt.world_group.counters
        assert counters.retries_total == 1
        assert counters.by_op_retries.get("p2p") == 1

    def test_injected_collective_glitch_attributed(self):
        plan = FaultPlan().glitch(op="all_reduce", attempts=2, max_glitches=1)
        san = CommSanitizer(checksum=True)

        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.all_reduce(np.ones(4))

        rt, results = _run(4, prog, san=san, plan=plan)
        np.testing.assert_allclose(results[0], np.full(4, 4.0))
        events = [e for e in san.summary()["events"] if e.kind == "collective"]
        assert len(events) == 1
        assert events[0].injected and events[0].healed
        assert rt.world_group.counters.retries_total == 2

    def test_drop_retries_keep_checksums_clean(self):
        # dropped packets never reach verify_recv; the delivered copy must
        # hash clean and the event log must stay free of logic-bug entries
        plan = FaultPlan().drop(src=0, dst=1, count=3)
        san = CommSanitizer(checksum=True)

        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.send(np.arange(16.0), dst=1)
                return None
            return comm.recv(src=0).sum()

        _, results = _run(2, prog, san=san, plan=plan)
        assert results[1] == 120.0
        assert not [e for e in san.summary()["events"] if not e.injected]


# ---------------------------------------------------------------------------
# shared-buffer race detection


class TestRaceDetection:
    def test_loaned_ring_pass_buffer_mutation_raises(self):
        # ring_pass hands receivers references to senders' arrays; mutating
        # the sender's copy afterwards must fail at the guilty line
        def prog(ctx):
            comm = Communicator.world(ctx)
            x = np.full(4, float(ctx.rank))
            got = comm.ring_pass(x, shift=1)
            x[:] = 99.0  # borrower still holds this buffer
            return got

        with pytest.raises(RemoteRankError) as ei:
            _run(2, prog, san=CommSanitizer(race=True))
        cause = _cause(ei)
        assert isinstance(cause, ValueError)
        assert "read-only" in str(cause)

    def test_race_detector_records_loans(self):
        san = CommSanitizer(race=True)

        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.ring_pass(np.full(4, float(ctx.rank)), shift=1)

        _run(2, prog, san=san)
        loans = san.summary()["loans"]
        assert loans and all(l["op"] == "ring_pass" for l in loans)
        assert san.summary()["race_violations"] == []

    def test_non_aliased_buffers_released(self):
        # all_reduce results are fresh arrays: inputs must be writable again
        def prog(ctx):
            comm = Communicator.world(ctx)
            x = np.ones(4)
            comm.all_reduce(x)
            x[:] = 5.0  # fine: nobody borrowed x
            return x.sum()

        _, results = _run(2, prog, san=CommSanitizer(race=True))
        assert results == [20.0, 20.0]


# ---------------------------------------------------------------------------
# record / replay conformance


class TestRecordReplay:
    @staticmethod
    def _prog(ctx):
        comm = Communicator.world(ctx)
        x = np.full(4, float(ctx.rank + 1))
        comm.all_reduce(x)
        if ctx.rank == 0:
            comm.send(np.arange(4.0), dst=1)
        elif ctx.rank == 1:
            comm.recv(src=0)
        root = np.arange(4.0) if ctx.rank == 0 else np.zeros(4)
        return comm.broadcast(root, root=0)

    def test_record_then_conforming_replay(self, tmp_path):
        golden = tmp_path / "golden.json"
        san = CommSanitizer(checksum=True)
        _run(4, self._prog, san=san)
        san.save_golden(str(golden))

        doc = load_golden(str(golden))
        assert doc["world_size"] == 4
        assert len(doc["streams"]) == 4

        _run(4, self._prog, san=CommSanitizer(checksum=True,
                                              replay=str(golden)))

    def test_replay_pinpoints_first_divergence(self, tmp_path):
        golden = tmp_path / "golden.json"
        san = CommSanitizer(checksum=True)
        _run(4, self._prog, san=san)
        san.save_golden(str(golden))

        def drifted(ctx):
            comm = Communicator.world(ctx)
            x = np.full(4, float(ctx.rank + 1))
            comm.all_reduce(x)
            comm.barrier()  # <- was a send/recv + broadcast
            root = np.arange(4.0) if ctx.rank == 0 else np.zeros(4)
            return comm.broadcast(root, root=0)

        with pytest.raises(RemoteRankError) as ei:
            _run(4, drifted, san=CommSanitizer(checksum=True,
                                               replay=str(golden)))
        cause = _cause(ei)
        assert isinstance(cause, ReplayDivergence)
        assert cause.step == 1
        assert cause.got["op"] == "barrier"

    def test_replay_detects_data_divergence(self, tmp_path):
        golden = tmp_path / "golden.json"
        san = CommSanitizer(checksum=True)
        _run(4, self._prog, san=san)
        san.save_golden(str(golden))

        def other_data(ctx):
            comm = Communicator.world(ctx)
            x = np.full(4, float(ctx.rank + 7))  # same ops, other bytes
            comm.all_reduce(x)
            if ctx.rank == 0:
                comm.send(np.arange(4.0), dst=1)
            elif ctx.rank == 1:
                comm.recv(src=0)
            root = np.arange(4.0) if ctx.rank == 0 else np.zeros(4)
            return comm.broadcast(root, root=0)

        with pytest.raises(RemoteRankError) as ei:
            _run(4, other_data, san=CommSanitizer(checksum=True,
                                                  replay=str(golden)))
        cause = _cause(ei)
        assert isinstance(cause, ReplayDivergence)
        assert cause.step == 0
        assert "payload bytes differ" in str(cause)

    def test_truncated_run_is_divergence(self, tmp_path):
        golden = tmp_path / "golden.json"
        san = CommSanitizer()
        _run(4, self._prog, san=san)
        san.save_golden(str(golden))

        def short(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.full(4, float(ctx.rank + 1)))
            return None  # stops before the p2p + broadcast

        with pytest.raises(ReplayDivergence):
            _run(4, short, san=CommSanitizer(replay=str(golden)))

    def test_offline_first_divergence(self):
        san_a = CommSanitizer(checksum=True)
        _run(4, self._prog, san=san_a)

        def drifted(ctx):
            comm = Communicator.world(ctx)
            x = np.full(4, float(ctx.rank + 1))
            comm.all_reduce(x)
            comm.all_reduce(x)  # diverges here on every rank
            return None

        san_b = CommSanitizer(checksum=True)
        _run(4, drifted, san=san_b)

        div = first_divergence(san_a.golden(), san_b.golden())
        assert div is not None
        assert (div.rank, div.step) == (0, 1)
        assert first_divergence(san_a.golden(), san_a.golden()) is None


# ---------------------------------------------------------------------------
# configuration surface


class TestConfig:
    def test_sanitize_section_parsed(self):
        cfg = Config.from_dict({"sanitize": {"checksum": True, "race": True}})
        assert cfg.sanitize.enabled  # implied by any sanitize key
        san = cfg.sanitize.build()
        assert isinstance(san, CommSanitizer)
        assert san.checksum and san.race_detector is not None

    def test_record_replay_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            Config.from_dict({"sanitize": {
                "record": "a.json", "replay": "b.json",
            }})

    def test_options_require_enabled(self):
        with pytest.raises(ValueError, match="enabled"):
            SanitizeConfig(enabled=False, checksum=True).validate()

    def test_launch_with_sanitize_config(self):
        def prog(ctx, pc):
            comm = Communicator.world(ctx)
            n = 3 if ctx.rank == 1 else 4
            return comm.all_reduce(np.ones(n))

        with pytest.raises(RemoteRankError) as ei:
            repro.launch({"sanitize": {"enabled": True}},
                         uniform_cluster(4), prog, world_size=4)
        assert isinstance(_cause(ei), CollectiveMismatch)

    def test_launch_record_writes_golden(self, tmp_path):
        golden = tmp_path / "run.json"

        def prog(ctx, pc):
            comm = Communicator.world(ctx)
            return comm.all_reduce(np.ones(4))

        cluster = uniform_cluster(4)
        repro.launch({"sanitize": {"record": str(golden)}}, cluster, prog,
                     world_size=4)
        doc = load_golden(str(golden))
        assert all(len(s) == 1 for s in doc["streams"].values())
        # and the saved golden immediately replays clean
        repro.launch({"sanitize": {"replay": str(golden)}}, cluster, prog,
                     world_size=4)


# ---------------------------------------------------------------------------
# overhead guard: disabled sanitizer must cost nothing


class TestOverheadGuard:
    @staticmethod
    def _prog(ctx):
        comm = Communicator.world(ctx)
        x = np.full(8, float(ctx.rank))
        for _ in range(3):
            x = comm.all_reduce(x)
        comm.barrier()
        return comm.all_gather(np.full(2, float(ctx.rank))).sum()

    def test_disabled_sanitizer_builds_no_specs(self, monkeypatch):
        import repro.sanitize.sanitizer as san_mod

        calls = []
        orig = san_mod.CollectiveSpec

        def counting(*args, **kwargs):
            calls.append(1)
            return orig(*args, **kwargs)

        monkeypatch.setattr(san_mod, "CollectiveSpec", counting)
        _run(4, self._prog)  # no sanitizer
        assert calls == []  # the disabled hot path never allocates a spec
        _run(4, self._prog, san=CommSanitizer())
        assert len(calls) == 5 * 4  # 5 collectives x 4 ranks when enabled

    def test_sanitizer_adds_no_collective_rounds(self):
        from repro.trace import Tracer

        def snapshot(san):
            tracer = Tracer()
            rt, results = _run(4, self._prog, san=san, tracer=tracer)
            c = rt.world_group.counters
            spans = [s for s in tracer.spans() if s.cat == "collective"]
            return (results, c.calls_total, c.bytes_total,
                    rt.clocks[0].time, len(spans))

        res_off, calls_off, bytes_off, t_off, spans_off = snapshot(None)
        res_on, calls_on, bytes_on, t_on, spans_on = snapshot(
            CommSanitizer(checksum=True, race=True)
        )
        # verification piggybacks on existing rounds: identical wire
        # traffic, call counts, simulated time and span counts
        assert res_on == res_off
        assert calls_on == calls_off
        assert bytes_on == bytes_off
        assert t_on == t_off
        assert spans_on == spans_off

    def test_disabled_rounds_share_empty_trace_extra(self):
        from repro.comm.group import _NO_EXTRA, _Round

        rnd = _Round()
        assert rnd.trace_extra is _NO_EXTRA
        assert rnd.specs is None
