"""Tests for Tensor/Storage memory accounting and sharding helpers."""

import gc

import numpy as np
import pytest

from repro.cluster.device import Device, DeviceKind, DeviceOutOfMemoryError
from repro.comm.payload import SpecArray
from repro.tensor import (
    ShardSpec,
    Storage,
    Tensor,
    from_numpy,
    full,
    local_shard_shape,
    ones,
    randn,
    set_default_device,
    shard_payload,
    zeros,
)
from repro.utils.units import MB


@pytest.fixture
def dev():
    d = Device("t", DeviceKind.GPU, memory_capacity=64 * MB)
    set_default_device(d)
    yield d
    set_default_device(None)


class TestStorage:
    def test_alloc_and_release(self, dev):
        s = Storage(dev, 1000)
        assert dev.memory.allocated == 1000
        s.release()
        assert dev.memory.allocated == 0

    def test_release_idempotent(self, dev):
        s = Storage(dev, 1000)
        s.release()
        s.release()
        assert dev.memory.allocated == 0

    def test_gc_frees(self, dev):
        s = Storage(dev, 4096)
        del s
        gc.collect()
        assert dev.memory.allocated == 0


class TestTensor:
    def test_creation_accounts_bytes(self, dev):
        t = Tensor(np.zeros((10, 10), dtype=np.float32))
        assert dev.memory.allocated == 400
        assert t.shape == (10, 10)
        assert t.nbytes == 400

    def test_fp16_accounting(self, dev):
        keep = Tensor(np.zeros(100, dtype=np.float16))
        assert dev.memory.allocated == 200

    def test_spec_tensor_accounts_same(self, dev):
        keep = Tensor(SpecArray((10, 10), "float32"))
        assert dev.memory.allocated == 400

    def test_oom(self, dev):
        with pytest.raises(DeviceOutOfMemoryError):
            Tensor(SpecArray((128 * MB,), "float32"))

    def test_view_shares_storage(self, dev):
        t = Tensor(np.zeros((4, 4), dtype=np.float32))
        before = dev.memory.allocated
        v = Tensor(t.payload.reshape(16), base=t)
        assert dev.memory.allocated == before
        assert v.storage is t.storage

    def test_detach_shares_storage_drops_grad(self, dev):
        t = Tensor(np.ones(4), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.storage is t.storage

    def test_release(self, dev):
        t = Tensor(np.zeros(1000, dtype=np.float32))
        t.release()
        assert dev.memory.allocated == 0

    def test_numpy_raises_on_spec(self, dev):
        t = Tensor(SpecArray((3,)))
        with pytest.raises(RuntimeError):
            t.numpy()
        assert t.data is None

    def test_item(self, dev):
        assert Tensor(np.array([2.5])).item() == 2.5

    def test_tag_breakdown(self, dev):
        keep1 = Tensor(np.zeros(100, dtype=np.float32), tag="param")
        keep2 = Tensor(np.zeros(50, dtype=np.float32), tag="grad")
        b = dev.memory.breakdown()
        assert b["param"] == 400 and b["grad"] == 200

    def test_factories(self, dev):
        assert np.all(zeros((3,)).numpy() == 0)
        assert np.all(ones((3,)).numpy() == 1)
        assert np.all(full((2,), 7).numpy() == 7)
        r = randn((100,), std=2.0, rng=np.random.default_rng(0))
        assert 1.0 < float(np.std(r.numpy())) < 3.0
        assert from_numpy(np.eye(2)).shape == (2, 2)


class TestShardSpec:
    def test_local_shape(self):
        s = ShardSpec((8, 6), {0: 2, 1: 3})
        assert s.local_shape == (4, 2)
        assert s.num_shards == 6

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec((7,), {0: 2})

    def test_out_of_range_dim(self):
        with pytest.raises(ValueError):
            ShardSpec((4,), {1: 2})

    def test_chunk_roundtrip(self):
        x = np.arange(24).reshape(4, 6)
        s = ShardSpec((4, 6), {0: 2, 1: 3})
        blocks = [[s.chunk(x, {0: i, 1: j}) for j in range(3)] for i in range(2)]
        rebuilt = np.block(blocks)
        np.testing.assert_array_equal(rebuilt, x)

    def test_chunk_spec_payload(self):
        s = ShardSpec((4, 6), {1: 3})
        out = s.chunk(SpecArray((4, 6)), {1: 1})
        assert isinstance(out, SpecArray) and out.shape == (4, 2)

    def test_bad_index(self):
        s = ShardSpec((4,), {0: 2})
        with pytest.raises(ValueError):
            s.chunk(np.zeros(4), {0: 5})


class TestShardPayload:
    def test_basic(self):
        x = np.arange(8)
        np.testing.assert_array_equal(shard_payload(x, 0, 4, 2), [4, 5])

    def test_local_shard_shape(self):
        assert local_shard_shape((8, 4), 1, 2) == (8, 2)

    def test_indivisible(self):
        with pytest.raises(ValueError):
            shard_payload(np.zeros(7), 0, 2, 0)

    def test_spec(self):
        out = shard_payload(SpecArray((8, 4)), 0, 2, 1)
        assert isinstance(out, SpecArray) and out.shape == (4, 4)

    def test_contiguous_output(self):
        x = np.arange(16).reshape(4, 4)
        c = shard_payload(x, 1, 2, 0)
        assert c.flags["C_CONTIGUOUS"]
