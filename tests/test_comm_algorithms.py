"""Collective algorithm layer: selector caching, runtime/config plumbing,
per-algorithm counters and trace metadata, fault-driven re-selection."""

import numpy as np
import pytest

import repro
from repro.cluster import system_i, system_ii, uniform_cluster
from repro.comm import ALGORITHMS, Communicator, CostModel
from repro.comm.algorithms import SELECTABLE_OPS
from repro.config import Config
from repro.faults import FaultPlan
from repro.runtime import SpmdRuntime
from repro.trace import Tracer
from repro.utils.units import MB

pytestmark = pytest.mark.comm_algo

NVLINK_PAIRS = [("gpu0", "gpu1"), ("gpu2", "gpu3"),
                ("gpu4", "gpu5"), ("gpu6", "gpu7")]


def _allreduce_prog(ctx):
    comm = Communicator.world(ctx)
    out = comm.all_reduce(np.full((1 << 14,), float(ctx.rank), dtype=np.float32))
    return out.sum(), ctx.clock.time


class TestSelector:
    def test_miss_then_hit(self):
        cm = CostModel(system_ii(), algorithm="auto")
        cm.allreduce(range(8), 4 * MB)
        assert (cm.selector.misses, cm.selector.hits) == (1, 0)
        cm.allreduce(range(8), 4 * MB)
        assert (cm.selector.misses, cm.selector.hits) == (1, 1)
        assert len(cm.selector) == 1

    def test_cached_choice_exposed(self):
        cm = CostModel(system_ii(), algorithm="auto")
        assert cm.selector.cached_choice("all_reduce", range(8), 64 * MB) is None
        cm.allreduce(range(8), 64 * MB)
        assert (
            cm.selector.cached_choice("all_reduce", range(8), 64 * MB)
            == "hierarchical"
        )

    def test_distinct_groups_cached_separately(self):
        cm = CostModel(system_ii(), algorithm="auto")
        cm.allreduce(range(8), MB)
        cm.allreduce(range(4), MB)
        assert len(cm.selector) == 2

    def test_hit_repriced_at_actual_size(self):
        """Within one power-of-two bucket the returned cost must track the
        actual byte count, not the bucket representative's."""
        cm = CostModel(system_ii(), algorithm="auto")
        lo = cm.allreduce(range(8), 3 * MB)
        hi = cm.allreduce(range(8), 4 * MB - 8)  # same bucket, more bytes
        assert cm.selector.hits == 1
        assert hi.seconds > lo.seconds

    def test_non_selectable_ops_bypass_cache(self):
        cm = CostModel(system_ii(), algorithm="auto")
        cm.all_to_all(range(8), MB)
        cm.scatter(0, range(8), MB)
        cm.barrier(range(8))
        assert len(cm.selector) == 0
        assert "all_to_all" not in SELECTABLE_OPS

    def test_clear(self):
        cm = CostModel(system_ii(), algorithm="auto")
        cm.allreduce(range(8), MB)
        cm.selector.clear()
        assert len(cm.selector) == 0


class TestRuntimePlumbing:
    def test_runtime_rejects_bad_algorithm(self):
        with pytest.raises(ValueError, match="comm_algorithm"):
            SpmdRuntime(uniform_cluster(2), comm_algorithm="mesh")

    def test_set_comm_algorithm_updates_existing_groups(self):
        rt = SpmdRuntime(uniform_cluster(2))
        grp = rt.world_group
        assert grp.cost_model.algorithm == "ring"
        rt.set_comm_algorithm("auto")
        assert grp.cost_model.algorithm == "auto"
        with pytest.raises(ValueError):
            rt.set_comm_algorithm("star")

    def test_config_comm_section(self):
        cfg = Config.from_dict(dict(comm=dict(algorithm="auto", island_ratio=0.4)))
        assert cfg.comm.algorithm == "auto"
        assert cfg.comm.island_ratio == 0.4
        with pytest.raises(ValueError, match="comm algorithm"):
            Config.from_dict(dict(comm=dict(algorithm="butterfly")))
        with pytest.raises(ValueError, match="island_ratio"):
            Config.from_dict(dict(comm=dict(island_ratio=0.0)))

    def test_launch_plumbs_algorithm(self):
        rt = SpmdRuntime(system_ii(), world_size=4)

        def prog(ctx, pc):
            return None

        repro.launch(dict(comm=dict(algorithm="hierarchical")),
                     rt.cluster, prog, world_size=4, runtime=rt)
        assert rt.comm_algorithm == "hierarchical"
        assert rt.world_group.cost_model.algorithm == "hierarchical"

    def test_results_identical_across_algorithms(self):
        """Collective *results* never depend on the priced algorithm."""
        outs = {}
        for algo in ALGORITHMS + ("auto",):
            rt = SpmdRuntime(system_ii(), world_size=4, comm_algorithm=algo)
            res = rt.run(_allreduce_prog)
            outs[algo] = [v for v, _t in res]
        ring = outs["ring"]
        for algo, vals in outs.items():
            assert vals == ring, algo

    def test_hierarchical_faster_end_to_end(self):
        """The cost win shows up on the simulated clocks, not just in the
        cost model."""

        def big_prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones((16 * MB // 4,), dtype=np.float32))
            return ctx.clock.time

        t_ring = max(SpmdRuntime(system_ii(), comm_algorithm="ring").run(big_prog))
        t_auto = max(SpmdRuntime(system_ii(), comm_algorithm="auto").run(big_prog))
        assert t_auto < t_ring


class TestCountersAndTrace:
    def test_by_algorithm_counters(self):
        rt = SpmdRuntime(system_ii(), world_size=8, comm_algorithm="hierarchical")
        rt.run(_allreduce_prog)
        counters = rt.world_group.counters
        assert counters.by_algorithm_calls == {"hierarchical": 1}
        assert counters.by_algorithm_bytes["hierarchical"] == counters.bytes_total

    def test_auto_counts_selected_family(self):
        rt = SpmdRuntime(system_ii(), world_size=8, comm_algorithm="auto")

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones((64 * MB // 4,), dtype=np.float32))
            comm.all_reduce(np.ones((16,), dtype=np.float32))

        rt.run(prog)
        calls = rt.world_group.counters.by_algorithm_calls
        assert calls.get("hierarchical") == 1  # the 64 MiB call
        assert sum(calls.values()) == 2

    def test_counters_merge_and_reset(self):
        rt = SpmdRuntime(system_ii(), world_size=4, comm_algorithm="hierarchical")
        rt.run(_allreduce_prog)
        c = rt.world_group.counters
        merged = c.merged_with(c)
        assert merged.by_algorithm_calls["hierarchical"] == 2
        c.reset()
        assert c.by_algorithm_calls == {}

    def test_trace_spans_carry_algorithm(self):
        tracer = Tracer()
        rt = SpmdRuntime(system_ii(), world_size=4,
                         comm_algorithm="auto", tracer=tracer)
        rt.run(_allreduce_prog)
        spans = tracer.spans(cat="collective")
        assert spans
        assert all(s.args.get("algo") in ALGORITHMS for s in spans)


class TestFaultReselection:
    """Satellite: link degradation (PR 1 faults) must re-trigger selection."""

    @pytest.mark.chaos
    def test_scale_link_invalidates_selector(self):
        cm = CostModel(system_ii(), algorithm="auto")
        first = cm.allreduce(range(8), 64 * MB)
        assert first.algorithm == "hierarchical"
        topo = cm.cluster.topology
        for a, b in NVLINK_PAIRS:
            topo.scale_link(a, b, 0.01)  # NVLink now far below PCIe
        second = cm.allreduce(range(8), 64 * MB)
        # cache was dropped (a fresh miss) and the choice changed: with the
        # islands gone, the two-level schedule has nothing to exploit
        assert cm.selector.misses == 2
        assert second.algorithm != "hierarchical"
        assert second.seconds != first.seconds
        topo.restore_links()
        third = cm.allreduce(range(8), 64 * MB)
        assert cm.selector.misses == 3
        assert third.algorithm == first.algorithm
        assert third.seconds == pytest.approx(first.seconds)

    @pytest.mark.chaos
    def test_fault_plan_degradation_reroutes(self, fault_seed):
        """End to end: a FaultPlan LinkDegrade changes what auto picks and
        what lands in the by-algorithm counters."""

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones((64 * MB // 4,), dtype=np.float32))
            return ctx.clock.time

        healthy = SpmdRuntime(system_ii(), comm_algorithm="auto")
        t_healthy = max(healthy.run(prog))
        assert healthy.world_group.counters.by_algorithm_calls == {
            "hierarchical": 1
        }

        plan = FaultPlan(seed=fault_seed)
        for src, dst in ((0, 1), (2, 3), (4, 5), (6, 7)):
            plan.degrade_link(src=src, dst=dst, factor=0.01)
        degraded = SpmdRuntime(system_ii(), comm_algorithm="auto",
                               fault_plan=plan)
        t_degraded = max(degraded.run(prog))
        calls = degraded.world_group.counters.by_algorithm_calls
        assert "hierarchical" not in calls
        assert t_degraded > t_healthy

    @pytest.mark.chaos
    def test_selection_survives_island_collapse_numerically(self, fault_seed):
        """Results stay bitwise identical when degradation flips the
        algorithm mid-plan."""
        plan = FaultPlan(seed=fault_seed).degrade_link(src=0, dst=1, factor=0.05)
        base = SpmdRuntime(system_ii(), world_size=4, comm_algorithm="auto")
        faulty = SpmdRuntime(system_ii(), world_size=4, comm_algorithm="auto",
                             fault_plan=plan)
        vals_base = [v for v, _ in base.run(_allreduce_prog)]
        vals_faulty = [v for v, _ in faulty.run(_allreduce_prog)]
        assert vals_base == vals_faulty
