"""Checkpoint / kill / resume: a DP+TP training run that loses a rank must
restart from the last consistent snapshot and converge to bitwise-identical
results vs. an uninterrupted run."""

import numpy as np
import pytest

import repro
from repro.cluster import uniform_cluster
from repro.data import DataLoader, synthetic_image_classification
from repro.faults import FaultPlan
from repro.models import ViTConfig, build_vit
from repro.optim import AdamW
from repro.parallel.data import shard_batch
from repro.runtime import SpmdRuntime
from repro.runtime.errors import RankFailure, RemoteRankError
from repro.trainer import CheckpointManager, LossLoggingHook, Trainer

pytestmark = pytest.mark.chaos

WORLD = 4
CDICT = dict(parallel=dict(tensor=dict(size=2, mode="1d")))  # dp2 x tp2
VIT = ViTConfig(
    image_size=8, patch_size=4, in_channels=2, hidden_size=16,
    n_layers=1, n_heads=2, n_classes=3, mlp_ratio=1, seed=5,
)
EPOCHS = 3  # 48 samples / batch 16 = 3 steps per epoch, 9 total


def _make_parts(pc):
    X, Y = synthetic_image_classification(
        48, image_size=8, channels=2, n_classes=3, noise=0.3, seed=1
    )
    bundle = build_vit(VIT, pc, mode="1d")
    engine = repro.initialize(
        bundle.model,
        AdamW(bundle.model.parameters(), lr=3e-3, weight_decay=0.0),
        None, pc=pc,
    )
    shard_in = lambda x: shard_batch(np.asarray(x), pc)
    loss_fn = lambda out, y: bundle.loss_fn(out, shard_batch(np.asarray(y), pc))
    loader = DataLoader(X, Y, batch_size=16, seed=0)
    return bundle, engine, shard_in, loss_fn, loader


def _make_trainer(pc, manager=None, every=0):
    bundle, engine, shard_in, loss_fn, loader = _make_parts(pc)
    trainer = Trainer(
        engine, hooks=[LossLoggingHook(every=1)],
        shard_input=shard_in, loss_fn=loss_fn,
        checkpoint=manager, checkpoint_every=every,
    )
    return bundle, trainer, loader


def _weights(bundle):
    return {k: v.tobytes() for k, v in bundle.model.state_dict().items()}


def _baseline():
    def prog(ctx, pc):
        bundle, trainer, loader = _make_trainer(pc)
        hist = trainer.fit(loader, epochs=EPOCHS)
        return hist["loss"], _weights(bundle)

    return repro.launch(CDICT, uniform_cluster(WORLD), prog, world_size=WORLD)


def _crash_then_resume(crash_step, seed, checkpoint_every=2):
    """Run DP+TP training that loses a rank at ``crash_step``, then resume
    from the newest consistent checkpoint.  Returns per-rank
    (loss history, final weights)."""
    manager = CheckpointManager()

    def faulted(ctx, pc):
        bundle, trainer, loader = _make_trainer(pc, manager, checkpoint_every)
        trainer.fit(loader, epochs=EPOCHS)
        return "finished"  # pragma: no cover - the crash precedes this

    plan = FaultPlan(seed=seed).crash(rank=1, at_step=crash_step)
    rt = SpmdRuntime(uniform_cluster(WORLD), fault_plan=plan)
    with pytest.raises(RemoteRankError) as ei:
        repro.launch(CDICT, uniform_cluster(WORLD), faulted,
                     world_size=WORLD, runtime=rt)
    assert isinstance(ei.value.__cause__, RankFailure)
    assert ei.value.__cause__.rank == 1
    assert ei.value.__cause__.step == crash_step

    step = manager.latest_common_step(WORLD)
    if crash_step <= checkpoint_every:
        # crash before the first snapshot: cold restart from step 0
        assert step is None

    def resumed(ctx, pc):
        bundle, trainer, loader = _make_trainer(pc, manager, checkpoint_every)
        if step is not None:
            manager.load(ctx.rank, step).restore(trainer, loader)
        hist = trainer.fit(loader, epochs=EPOCHS)
        return hist["loss"], _weights(bundle)

    # same runtime: the crash event already fired (the failed node was
    # replaced), so the program runs to completion this time
    return repro.launch(CDICT, uniform_cluster(WORLD), resumed,
                        world_size=WORLD, runtime=rt)


class TestCrashResume:
    def test_mid_epoch_crash_resumes_bitwise(self, fault_seed):
        base = _baseline()
        res = _crash_then_resume(crash_step=5, seed=fault_seed)
        for r in range(WORLD):
            assert res[r][0] == base[r][0]  # full loss trajectory
            assert res[r][1] == base[r][1]  # every weight, bitwise

    def test_epoch_boundary_crash_resumes_bitwise(self, fault_seed):
        """Checkpoint at step 6 = end of epoch 2: the resume path must take
        the epoch-boundary branch (no batch replay)."""
        base = _baseline()
        res = _crash_then_resume(crash_step=7, seed=fault_seed,
                                 checkpoint_every=3)
        for r in range(WORLD):
            assert res[r][0] == base[r][0]
            assert res[r][1] == base[r][1]

    def test_any_crash_step_resumes_bitwise(self, fault_seed):
        """Property: whatever step the rank dies at — including before the
        first checkpoint — the resumed run is bitwise identical."""
        base = _baseline()
        rng = np.random.default_rng(fault_seed)
        total_steps = EPOCHS * 3
        for crash_step in rng.choice(np.arange(1, total_steps + 1), size=3,
                                     replace=False):
            res = _crash_then_resume(crash_step=int(crash_step), seed=fault_seed)
            for r in range(WORLD):
                assert res[r][0] == base[r][0], f"crash_step={crash_step}"
                assert res[r][1] == base[r][1], f"crash_step={crash_step}"


class TestCheckpointManager:
    def test_latest_common_step_requires_all_ranks(self):
        from repro.trainer.checkpoint import Checkpoint

        mgr = CheckpointManager()
        ck = Checkpoint(step=2, epoch=1, steps_into_epoch=2, model_state={},
                        optim_state=None, engine_state={}, loader_state=None,
                        loader_state_end=None)
        mgr.save(0, ck)
        assert mgr.latest_common_step(2) is None  # rank 1 has nothing
        mgr.save(1, ck)
        assert mgr.latest_common_step(2) == 2
        assert mgr.steps(0) == [2]
        mgr.clear()
        assert mgr.latest_common_step(2) is None

    def test_load_missing_raises(self):
        mgr = CheckpointManager()
        with pytest.raises(KeyError):
            mgr.load(0, 1)
