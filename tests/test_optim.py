"""Optimizers: math correctness, state accounting, device placement."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.cluster.device import Device, DeviceKind
from repro.comm.payload import SpecArray
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, CPUAdam, CosineAnnealingLR, HybridAdam, LinearWarmupCosine
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor, set_default_device
from repro.utils.units import MB

from conftest import run_spmd


def _param(values, dtype="float32"):
    p = Parameter(np.asarray(values, dtype=dtype))
    p.grad = Tensor(np.ones_like(np.asarray(values, dtype=np.float32)))
    return p


def _reference_adam(w, g, lr, b1, b2, eps, steps, wd=0.0, decoupled=False):
    w = w.astype(np.float64).copy()
    m = np.zeros_like(w)
    v = np.zeros_like(w)
    for t in range(1, steps + 1):
        grad = g.copy()
        if wd and not decoupled:
            grad = grad + wd * w
        m = b1 * m + (1 - b1) * grad
        v = b2 * v + (1 - b2) * grad * grad
        mh = m / (1 - b1**t)
        vh = v / (1 - b2**t)
        upd = mh / (np.sqrt(vh) + eps)
        if wd and decoupled:
            upd = upd + wd * w
        w = w - lr * upd
    return w


class TestAdamMath:
    def test_matches_reference_3_steps(self):
        w0 = np.array([1.0, -2.0, 0.5], dtype=np.float32)
        p = Parameter(w0.copy())
        opt = Adam([p], lr=0.1)
        for _ in range(3):
            p.grad = Tensor(np.ones(3, dtype=np.float32))
            opt.step()
        ref = _reference_adam(w0, np.ones(3), 0.1, 0.9, 0.999, 1e-8, 3)
        np.testing.assert_allclose(p.numpy(), ref, rtol=1e-5)

    def test_adamw_decoupled(self):
        w0 = np.array([1.0, 1.0], dtype=np.float32)
        p = Parameter(w0.copy())
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = Tensor(np.ones(2, dtype=np.float32))
        opt.step()
        ref = _reference_adam(w0, np.ones(2), 0.1, 0.9, 0.999, 1e-8, 1, wd=0.5, decoupled=True)
        np.testing.assert_allclose(p.numpy(), ref, rtol=1e-5)

    def test_fp16_master_weights(self):
        """Tiny updates must accumulate in the fp32 master even when the
        fp16 param can't represent them."""
        p = Parameter(np.full(4, 1.0, dtype=np.float16))
        opt = Adam([p], lr=1e-4)
        state_master = None
        for _ in range(10):
            p.grad = Tensor(np.full(4, 1.0, dtype=np.float32))
            opt.step()
        state_master = opt.state_for(p)["master"].numpy()
        assert state_master[0] < 1.0  # master moved
        assert p.dtype == np.float16

    def test_skip_param_without_grad(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = Adam([p])
        opt.step()  # no grad: no state, no crash
        np.testing.assert_array_equal(p.numpy(), [1.0, 1.0])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_zero_grad(self):
        p = _param([1.0])
        opt = Adam([p])
        opt.zero_grad()
        assert p.grad is None


class TestSGD:
    def test_plain_sgd(self):
        p = _param([1.0, 2.0])
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.numpy(), [0.5, 1.5])

    def test_momentum_accumulates(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            p.grad = Tensor(np.ones(1, dtype=np.float32))
            opt.step()
        # v1 = 1; w1 = -1; v2 = 1.9; w2 = -2.9
        np.testing.assert_allclose(p.numpy(), [-2.9], rtol=1e-6)

    def test_weight_decay(self):
        p = _param([2.0])
        SGD([p], lr=0.1, weight_decay=1.0).step()
        # g_eff = 1 + 2 -> w = 2 - 0.3
        np.testing.assert_allclose(p.numpy(), [1.7], rtol=1e-6)


class TestGradClipping:
    def test_clip_rescales(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = Tensor(np.full(4, 2.0, dtype=np.float32))  # norm 4
        opt = Adam([p])
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(4.0)
        assert float(np.linalg.norm(p.grad.numpy())) == pytest.approx(1.0, rel=1e-4)

    def test_no_clip_below_threshold(self):
        p = _param([0.1])
        opt = Adam([p])
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad.numpy(), [1.0])


class TestStateAccounting:
    def setup_method(self):
        self.dev = Device("opt", DeviceKind.GPU, memory_capacity=64 * MB)
        set_default_device(self.dev)

    def teardown_method(self):
        set_default_device(None)

    def test_adam_state_bytes(self):
        p = Parameter(np.zeros(1000, dtype=np.float32))
        p.grad = Tensor(np.ones(1000, dtype=np.float32))
        before = self.dev.memory.breakdown().get("optim", 0)
        opt = Adam([p])
        opt.step()
        after = self.dev.memory.breakdown().get("optim", 0)
        assert after - before == 2 * 4000  # m + v fp32

    def test_fp16_param_adds_master(self):
        p = Parameter(np.zeros(1000, dtype=np.float16))
        p.grad = Tensor(np.ones(1000, dtype=np.float32))
        opt = Adam([p])
        opt.step()
        assert self.dev.memory.breakdown()["optim"] == 3 * 4000  # m + v + master

    def test_spec_mode_state_allocated(self):
        p = Parameter(SpecArray((1000,), "float32"))
        p.grad = Tensor(SpecArray((1000,), "float32"))
        opt = Adam([p])
        opt.step()
        assert self.dev.memory.breakdown()["optim"] == 8000


class TestDevicePlacement:
    def test_cpu_adam_states_on_host(self):
        def prog(ctx):
            p = Parameter(np.zeros(100, dtype=np.float32))
            p.grad = Tensor(np.ones(100, dtype=np.float32))
            opt = CPUAdam([p], lr=0.1)
            opt.step()
            return ctx.cpu.memory.breakdown().get("optim", 0)

        res = run_spmd(1, prog)
        assert res[0] == 800

    def test_cpu_adam_slower_than_gpu_adam(self):
        def prog(ctx, cls):
            p = Parameter(np.zeros(100_000, dtype=np.float32))
            p.grad = Tensor(np.ones(100_000, dtype=np.float32))
            opt = cls([p], lr=0.1)
            opt.step()
            return ctx.clock.time

        t_gpu = run_spmd(1, prog, Adam)[0]
        t_cpu = run_spmd(1, prog, CPUAdam)[0]
        assert t_cpu > 5 * t_gpu

    def test_hybrid_adam_splits_placement(self):
        def prog(ctx):
            pg = Parameter(np.zeros(100, dtype=np.float32))
            pc_ = Parameter(np.zeros(100, dtype=np.float32))
            for p in (pg, pc_):
                p.grad = Tensor(np.ones(100, dtype=np.float32))
            placement = {id(pg): "gpu", id(pc_): "cpu"}
            opt = HybridAdam([pg, pc_], lr=0.1, placement_of=lambda p: placement[id(p)])
            opt.step()
            return (
                ctx.device.memory.breakdown().get("optim", 0),
                ctx.cpu.memory.breakdown().get("optim", 0),
            )

        gpu_b, cpu_b = run_spmd(1, prog)[0]
        assert gpu_b == 800 and cpu_b == 800

    def test_hybrid_matches_adam_math(self):
        w0 = np.array([1.0, -1.0], dtype=np.float32)

        def prog(ctx):
            p = Parameter(w0.copy())
            opt = HybridAdam([p], lr=0.1, placement_of=lambda p: "cpu")
            for _ in range(2):
                p.grad = Tensor(np.ones(2, dtype=np.float32))
                opt.step()
            return p.numpy()

        ref = _reference_adam(w0, np.ones(2), 0.1, 0.9, 0.999, 1e-8, 2)
        np.testing.assert_allclose(run_spmd(1, prog)[0], ref, rtol=1e-5)


class TestSchedulers:
    def test_cosine_endpoints(self):
        p = _param([1.0])
        opt = Adam([p], lr=1.0)
        sched = CosineAnnealingLR(opt, base_lr=1.0, total_steps=100, min_lr=0.1)
        assert sched.get_lr(0) == pytest.approx(1.0)
        assert sched.get_lr(100) == pytest.approx(0.1)
        assert sched.get_lr(50) == pytest.approx(0.55)

    def test_warmup_ramp(self):
        p = _param([1.0])
        opt = Adam([p], lr=1.0)
        sched = LinearWarmupCosine(opt, base_lr=1.0, warmup_steps=10, total_steps=100)
        assert sched.get_lr(5) == pytest.approx(0.5)
        assert sched.get_lr(10) == pytest.approx(1.0)
        assert sched.get_lr(100) == pytest.approx(0.0, abs=1e-9)

    def test_step_updates_optimizer_lr(self):
        p = _param([1.0])
        opt = Adam([p], lr=1.0)
        sched = LinearWarmupCosine(opt, base_lr=2.0, warmup_steps=2, total_steps=4)
        sched.step()
        assert opt.defaults["lr"] == pytest.approx(1.0)
