"""Differential parity for the projection execution mode (ISSUE 6).

``repro.project`` splits *what ops happen per rank* from *who executes
them*: a capture records each rank's op stream during a real threaded SPMD
run, and a single-threaded replay re-executes the stream on fresh clocks.
The fidelity contract is exactness, not approximation: with recorded
pricing, the replay's step time, per-rank clock/stream breakdowns and
per-group wire counters must equal the threaded run's **bit for bit** —
for every cell of the parallelism grid (DP / ZeRO / 1D-TP / pipeline ×
overlap off/on × ring/tree/hierarchical) at world sizes 2–16.

Cross-thread float *sums* are the one place IEEE-754 addition order can
differ: the group counters' exposed/overlapped seconds accumulate in
rank-arrival order in the real run but program order in the replay, and a
stream clock's ``overlapped`` mixes ``occupy`` additions (finalizer's
thread) with ``note_exposed`` subtractions (waiter's thread), so the
``+``/``-`` interleaving is host-scheduling dependent.  Those fields
compare under a 1e-12 relative tolerance; everything else — including each
stream's busy categories and ``exposed``, which accumulate in a
deterministic per-stream order — is exact.

Also here: model-mode repricing identity (a ``Fabric.from_cluster`` of the
captured cluster reproduces the captured costs), scale-out behaviour, and
hypothesis properties — projection determinism, step time monotone in
fabric bandwidth, and projected all-reduce volume matching the Table-1
``2(p-1)·S_X`` closed form at every projected scale.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytic.commvolume import comm_volume_1d
from repro.autograd import ops
from repro.cluster import system_ii, uniform_cluster
from repro.comm import Communicator, SpecArray
from repro.comm.cost import CostModel
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.nn import CrossEntropyLoss, Linear, Module
from repro.parallel.data import DistributedDataParallel
from repro.parallel.pipeline import (
    GPipeSchedule,
    OneFOneBSchedule,
    partition_uniform,
)
from repro.parallel.tensor1d import ParallelMLP1D
from repro.analytic.memory_model import project_peak_memory
from repro.project import (
    CaptureRecorder,
    Fabric,
    ProjectedCostModel,
    ReplayStall,
    ScaleAxis,
    ScalePlan,
    capture_run,
    derive_axis_groups,
    hybrid_plan,
    project,
)
from repro.runtime import SpmdRuntime
from repro.sanitize.replay import first_divergence, load_golden, save_golden
from repro.tensor import Tensor
from repro.zero import ZeroOffloadEngine
from repro.zero.policies import NoOffloadPolicy

pytestmark = pytest.mark.projection

H, C, B = 16, 4, 8
REL = 1e-12  # cross-thread float-sum tolerance (see module docstring)

_COUNTER_INT_FIELDS = (
    "bytes_total", "elements_total", "calls_total",
    "retries_total", "retry_bytes_total",
)
_COUNTER_DICT_FIELDS = (
    "by_op_bytes", "by_op_elements", "by_op_calls", "by_op_retries",
    "by_algorithm_bytes", "by_algorithm_calls",
)


def _pc(ctx):
    return ParallelContext(ctx, Config.from_dict({}))


def _assert_seconds(a: float, b: float, what: str) -> None:
    assert a == pytest.approx(b, rel=REL, abs=1e-18), (what, a, b)


def _assert_parity(rt, trace, rep):
    """The fidelity contract: replayed end-state == threaded end-state."""
    assert rep.step_time == rt.max_time()
    assert rep.source_world == rep.target_world == rt.world_size
    for r in range(rt.world_size):
        assert rep.per_rank[r].breakdown == rt.clocks[r].breakdown(), r
        stream, real_stream = rep.per_rank[r].stream, rt.comm_streams[r].breakdown()
        assert stream.keys() == real_stream.keys(), r
        for cat, real_val in real_stream.items():
            if cat == "overlapped":
                # occupy(+) and note_exposed(-) run on different threads in
                # the real run; the interleaving order is an ulp-level
                # cross-thread float sum (see module docstring)
                _assert_seconds(stream[cat], real_val, (r, cat))
            else:
                assert stream[cat] == real_val, (r, cat)
        assert rep.per_rank[r].peak_memory_bytes == (
            rt.cluster.device(r).memory.peak
        ), r
    for key, group in rt._groups.items():
        if key not in trace.groups:
            # group object created but never used in a priced op
            assert group.counters.calls_total == 0
            continue
        gid = trace.groups.index(key)
        real, proj = group.counters, rep.group_counters[gid]
        assert rep.group_multiplicity[gid] == 1
        for f in _COUNTER_INT_FIELDS:
            assert getattr(proj, f) == getattr(real, f), (key, f)
        for f in _COUNTER_DICT_FIELDS:
            assert getattr(proj, f, {}) == getattr(real, f, {}), (key, f)
        _assert_seconds(
            proj.exposed_seconds_total, real.exposed_seconds_total,
            (key, "exposed"),
        )
        _assert_seconds(
            proj.overlapped_seconds_total, real.overlapped_seconds_total,
            (key, "overlapped"),
        )


def _capture_pair(mk_cluster, world, prog, *, overlap=False, algorithm="ring",
                  materialize=True, seed=0):
    """Run ``prog`` twice — captured, then plain threaded — each on a fresh
    cluster from ``mk_cluster`` (a shared cluster would let the first run's
    tensor finalizers free into the second run's memory pools).  Returns
    ``(trace, plain runtime, captured results, plain results)``."""
    res_cap, trace = capture_run(
        mk_cluster(), prog, world_size=world, comm_overlap=overlap,
        comm_algorithm=algorithm, materialize=materialize, seed=seed,
    )
    rt = SpmdRuntime(
        mk_cluster(), world, comm_overlap=overlap, comm_algorithm=algorithm
    )
    res_real = rt.run(prog, materialize=materialize, seed=seed)
    return trace, rt, res_cap, res_real


# -- training harnesses (one per parallelism mode) -------------------------


class _MLP(Module):
    def __init__(self):
        super().__init__()
        self.l1 = Linear(H, 32, rng=np.random.default_rng(11))
        self.l2 = Linear(32, 32, rng=np.random.default_rng(12))
        self.l3 = Linear(32, C, rng=np.random.default_rng(13))

    def forward(self, x):
        return self.l3(ops.gelu(self.l2(ops.gelu(self.l1(x)))))


def _batch(step):
    rng = np.random.default_rng((7, step))
    X = rng.standard_normal((2 * B, H)).astype(np.float32)
    Y = rng.integers(0, C, 2 * B)
    return X, Y


def _ddp_prog(overlap, steps=2):
    crit = CrossEntropyLoss()

    def prog(ctx):
        pc = _pc(ctx)
        model = _MLP()
        ddp = DistributedDataParallel(model, pc, bucket_mb=0.002,
                                      overlap=overlap)
        losses = []
        for s in range(steps):
            X, Y = _batch(s)
            n = X.shape[0] // pc.data_size
            xl = X[ctx.rank * n : (ctx.rank + 1) * n]
            yl = Y[ctx.rank * n : (ctx.rank + 1) * n]
            loss = crit(ddp(Tensor(xl.copy())), yl)
            loss.backward()
            ddp.sync()
            for p in model.parameters():
                p.payload[...] = p.payload - 0.05 * p.grad.payload
                p.grad = None
            losses.append(loss.item())
        return losses

    return prog


def _zero_prog(overlap, world, steps=2):
    crit = CrossEntropyLoss()

    def prog(ctx):
        comm = Communicator.world(ctx)

        class Block(Module):
            def __init__(self, seed, out=H):
                super().__init__()
                self.lin = Linear(H, out, rng=np.random.default_rng(seed))

            def forward(self, x):
                y = self.lin(x)
                return ops.gelu(y) if self.lin.out_features == H else y

        blocks = [Block(21), Block(22), Block(23, out=C)]
        pol = NoOffloadPolicy(ctx.device, ctx.cpu, CostModel(ctx.cluster),
                              ctx.rank)
        eng = ZeroOffloadEngine(
            ctx, blocks, comm, pol, criterion=crit,
            chunk_mb=0.001, lr=1e-2, param_dtype="float32", overlap=overlap,
        )
        losses = []
        for s in range(steps):
            X, Y = _batch(s)
            n = X.shape[0] // world
            losses.append(
                eng.train_step(X[ctx.rank * n : (ctx.rank + 1) * n],
                               Y[ctx.rank * n : (ctx.rank + 1) * n])
            )
        eng.gather_parameters()
        return losses

    return prog


def _pipeline_prog(sched_cls, stages, microbatches=4):
    crit = CrossEntropyLoss()
    X, Y = _batch(0)

    class Stage(Module):
        def __init__(self, idxs, with_tail):
            super().__init__()
            self.layers = [Linear(H, H, rng=np.random.default_rng((31, i)))
                           for i in idxs]
            for i, l in enumerate(self.layers):
                setattr(self, f"lin{i}", l)
            self.head = (
                Linear(H, C, rng=np.random.default_rng(35))
                if with_tail else None
            )

        def forward(self, x):
            for l in self.layers:
                x = ops.gelu(l(x))
            return self.head(x) if self.head is not None else x

    def prog(ctx):
        pc = ParallelContext(
            ctx,
            Config.from_dict(
                dict(parallel=dict(pipeline=stages),
                     num_microbatches=microbatches)
            ),
        )
        s, e = partition_uniform(4, stages)[pc.pp_rank]
        stage = Stage(range(s, e), with_tail=pc.is_last_pipeline_stage())
        sched = sched_cls(pc, microbatches)
        loss = sched.run(
            stage,
            X.copy() if pc.is_first_pipeline_stage() else None,
            Y if pc.is_last_pipeline_stage() else None,
            crit,
        )
        return loss

    return prog


def _tp1d_prog(size):
    x_g = np.random.default_rng(3).standard_normal((B, H)).astype(np.float32)

    def prog(ctx):
        pc = ParallelContext(
            ctx,
            Config.from_dict(
                dict(parallel=dict(tensor=dict(size=size, mode="1d")))
            ),
        )
        comm = pc.comm(ParallelMode.TENSOR)
        mlp = ParallelMLP1D(H, comm, mlp_ratio=2,
                            rng=np.random.default_rng(0))
        x = Tensor(x_g.copy(), requires_grad=True)
        mlp(x).sum().backward()
        return float(x.grad.numpy().sum())

    return prog


# -- the exact-parity grid -------------------------------------------------


class TestExactParityGrid:
    @pytest.mark.parametrize("algorithm", ["ring", "tree", "hierarchical"])
    @pytest.mark.parametrize("overlap", [False, True])
    def test_data_parallel(self, algorithm, overlap):
        trace, rt, res_cap, res_real = _capture_pair(
            system_ii, 4, _ddp_prog(overlap),
            overlap=overlap, algorithm=algorithm,
        )
        assert res_cap == res_real  # capture is observation-only
        _assert_parity(rt, trace, project(trace, mode="recorded"))

    @pytest.mark.parametrize("algorithm", ["ring", "hierarchical"])
    @pytest.mark.parametrize("overlap", [False, True])
    def test_zero(self, algorithm, overlap):
        trace, rt, res_cap, res_real = _capture_pair(
            lambda: uniform_cluster(2), 2, _zero_prog(overlap, world=2),
            overlap=overlap, algorithm=algorithm,
        )
        assert res_cap == res_real
        _assert_parity(rt, trace, project(trace, mode="recorded"))

    @pytest.mark.parametrize("sched_cls", [GPipeSchedule, OneFOneBSchedule])
    @pytest.mark.parametrize("overlap", [False, True])
    def test_pipeline(self, sched_cls, overlap):
        trace, rt, res_cap, res_real = _capture_pair(
            lambda: uniform_cluster(4), 4, _pipeline_prog(sched_cls, stages=4),
            overlap=overlap,
        )
        assert res_cap == res_real
        _assert_parity(rt, trace, project(trace, mode="recorded"))

    @pytest.mark.parametrize("algorithm", ["ring", "tree"])
    def test_tensor_1d(self, algorithm):
        trace, rt, res_cap, res_real = _capture_pair(
            lambda: uniform_cluster(4), 4, _tp1d_prog(4), algorithm=algorithm,
        )
        assert res_cap == res_real
        _assert_parity(rt, trace, project(trace, mode="recorded"))

    def test_world_16_data_parallel(self):
        trace, rt, _, _ = _capture_pair(
            lambda: uniform_cluster(16), 16, _ddp_prog(overlap=True, steps=1),
            overlap=True,
        )
        _assert_parity(rt, trace, project(trace, mode="recorded"))


# -- model-mode repricing --------------------------------------------------


class TestModelModeRepricing:
    def test_from_cluster_fabric_reproduces_captured_costs(self):
        """Model mode at factor 1 on a ``Fabric.from_cluster`` of the
        captured (uniform) cluster re-derives every collective price from
        the closed-form fabric: wire bytes land exactly (integer formulas),
        seconds to ~1 ulp (the real ``ring_stats`` accumulates latency by
        iterated addition where the fabric multiplies)."""
        trace, rt, _, _ = _capture_pair(
            lambda: uniform_cluster(4), 4, _ddp_prog(overlap=False),
        )
        rec = project(trace, mode="recorded")
        mod = project(trace, mode="model")
        assert mod.step_time == pytest.approx(rec.step_time, rel=1e-9)
        assert mod.wire_bytes_total == rec.wire_bytes_total
        assert mod.by_op_bytes == rec.by_op_bytes
        assert mod.comm_calls_total == rec.comm_calls_total

    def test_recorded_mode_rejects_scaling(self):
        trace, _, _, _ = _capture_pair(lambda: uniform_cluster(2), 2, _tp1d_prog(2))
        with pytest.raises(ValueError, match="recorded"):
            project(trace, factor=2, mode="recorded")

    def test_scale_out_grows_world_group_traffic(self):
        """At factor f the world group's all-reduce is re-priced at f·p
        ranks: ring wire is 2(p-1)·n, so bytes grow and step time cannot
        shrink (same compute, more expensive gradient sync)."""
        trace, _, _, _ = _capture_pair(
            lambda: uniform_cluster(4), 4, _ddp_prog(overlap=False),
        )
        fabric = Fabric.uniform()
        base = project(trace, factor=1, fabric=fabric)
        big = project(trace, factor=64, fabric=fabric)
        assert big.target_world == 256
        assert big.factor == 64
        ar = "all_reduce"
        n = base.by_op_bytes[ar] // (2 * 3)  # 2(p-1)·n at p=4
        assert big.by_op_bytes[ar] == 2 * 255 * n
        assert big.step_time >= base.step_time
        assert big.peak_memory_bytes == base.peak_memory_bytes

    def test_unscaled_groups_count_factor_times(self):
        """Pipeline stage pairs are replicas in the projected world: their
        p2p traffic is multiplied by the factor, not re-priced wider.

        Captured at world 4 (pipeline 2 x data 2) so the stage pairs are
        *proper* subgroups of the world — a world-sized group would be the
        scale target (re-priced at multiplicity 1) rather than a replica.
        """
        trace, _, _, _ = _capture_pair(
            lambda: uniform_cluster(4), 4, _pipeline_prog(GPipeSchedule, stages=2),
        )
        world_group = tuple(range(4))
        assert any(
            g != world_group and len(g) < 4 for g in trace.groups
        ), trace.groups
        fabric = Fabric.uniform()
        base = project(trace, factor=1, fabric=fabric)
        big = project(trace, factor=8, fabric=fabric)
        # p2p only runs on the stage pairs, which stay captured-size
        # replicas in the projected world: volume scales with replica count
        assert base.by_op_bytes["p2p"] > 0
        assert big.by_op_bytes["p2p"] == 8 * base.by_op_bytes["p2p"]

    def test_compute_scale_stretches_compute_only(self):
        trace, _, _, _ = _capture_pair(lambda: uniform_cluster(2), 2, _tp1d_prog(2))
        fabric = Fabric.uniform()
        base = project(trace, fabric=fabric)
        slow = project(trace, plan=ScalePlan(compute_scale=2.0),
                       fabric=fabric)
        assert slow.step_time > base.step_time
        assert slow.wire_bytes_total == base.wire_bytes_total

    def test_truncated_trace_stalls_loudly(self):
        trace, _, _, _ = _capture_pair(
            lambda: uniform_cluster(2), 2, _pipeline_prog(GPipeSchedule, stages=2),
        )
        # drop rank 1's tail: rank 0 ends up waiting on a recv forever
        cut = [ev for ev in trace.streams[1] if ev[0] in ("a",)]
        trace.streams[1] = cut
        with pytest.raises(ReplayStall):
            project(trace, mode="recorded")

    def test_capture_rejects_fault_injection(self):
        from repro.faults import FaultPlan

        rt = SpmdRuntime(
            uniform_cluster(2), 2,
            fault_plan=FaultPlan(seed=1).glitch(op="all_reduce", attempts=2),
        )
        with pytest.raises(RuntimeError, match="fault injection"):
            CaptureRecorder().install(rt)


# -- hypothesis properties -------------------------------------------------

fast = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BB, SS, HH = 4, 8, 16  # all-reduce payload dims for the Table-1 property


@pytest.fixture(scope="module")
def allreduce_trace():
    """One world-group all-reduce of a (b, s, h) float32 spec tensor,
    captured at 4 ranks — the minimal 1D-TP-shaped op stream."""
    cluster = uniform_cluster(4)

    def prog(ctx):
        comm = Communicator.world(ctx)
        ctx.clock.advance(1e-4, "compute")
        comm.all_reduce(SpecArray((BB, SS, HH), "float32"))

    _, trace = capture_run(cluster, prog, world_size=4)
    return trace


_factors = st.sampled_from([1, 2, 4, 16, 64, 256])


class TestProjectionProperties:
    @given(factor=_factors)
    @fast
    def test_projection_is_deterministic(self, allreduce_trace, factor):
        fabric = Fabric.uniform()
        a = project(allreduce_trace, factor=factor, fabric=fabric).to_dict()
        b = project(allreduce_trace, factor=factor, fabric=fabric).to_dict()
        assert a == b

    @given(
        bw=st.floats(1e9, 1e12, allow_nan=False, allow_infinity=False),
        ratio=st.floats(1.0, 1e3, allow_nan=False, allow_infinity=False),
        factor=_factors,
    )
    @fast
    def test_step_time_non_increasing_in_bandwidth(
        self, allreduce_trace, bw, ratio, factor
    ):
        slow = project(allreduce_trace, factor=factor,
                       fabric=Fabric.uniform(bandwidth=bw))
        fastr = project(allreduce_trace, factor=factor,
                        fabric=Fabric.uniform(bandwidth=bw * ratio))
        assert fastr.step_time <= slow.step_time * (1 + 1e-12)

    @given(factor=_factors)
    @fast
    def test_projected_volume_matches_table1(self, allreduce_trace, factor):
        """Projected all-reduce wire elements equal the Table-1 closed form
        ``2(p'-1)·S_X`` at every projected world size p' (ring and tree
        all-reduce both move exactly that volume)."""
        rep = project(allreduce_trace, factor=factor,
                      fabric=Fabric.uniform())
        p2 = 4 * factor
        assert rep.target_world == p2
        assert rep.by_op_elements["all_reduce"] == comm_volume_1d(
            p2, BB, SS, HH
        )


# -- golden-file stability -------------------------------------------------


class TestGoldenStability:
    def _vit_ddp_prog(self):
        """A scaled-down Fig-13b scenario: DDP transformer stack on spec
        tensors, overlap on, 8 ranks."""
        from repro.nn import TransformerLayer

        LAYERS, HIDDEN, HEADS, PATCHES = 2, 64, 4, 8

        class Stack(Module):
            def __init__(self):
                super().__init__()
                for i in range(LAYERS):
                    setattr(self, f"layer{i}",
                            TransformerLayer(HIDDEN, HEADS))
                self.layers = [getattr(self, f"layer{i}")
                               for i in range(LAYERS)]

            def forward(self, x):
                for l in self.layers:
                    x = l(x)
                return x

        def prog(ctx):
            pc = _pc(ctx)
            ddp = DistributedDataParallel(Stack(), pc, overlap=True)
            x = Tensor(SpecArray((B, PATCHES, HIDDEN), "float32"),
                       requires_grad=True)
            ddp(x).sum().backward()
            ddp.sync()

        return prog

    def test_fig13b_capture_replays_stably(self, tmp_path):
        """Two independent captures of the Fig-13b DDP scenario produce
        byte-identical op streams, round-trip through the sanitizer golden
        format, and project to the same report."""
        prog = self._vit_ddp_prog()
        _, t1 = capture_run(system_ii(), prog, world_size=8, comm_overlap=True)
        _, t2 = capture_run(system_ii(), prog, world_size=8, comm_overlap=True)

        g1, g2 = t1.to_golden(), t2.to_golden()
        assert first_divergence(g1, g2) is None

        path = tmp_path / "fig13b_projection.json"
        save_golden(str(path), g1["world_size"], g1["streams"])
        loaded = load_golden(str(path))
        assert first_divergence(loaded, g2) is None

        r1 = project(t1, factor=128, fabric=Fabric.uniform()).to_dict()
        r2 = project(t2, factor=128, fabric=Fabric.uniform()).to_dict()
        assert r1 == r2
        assert r1["target_world"] == 1024


# -- hybrid-axis plans (ISSUE 7) -------------------------------------------


def _pop_axes(report):
    """Report dict minus the per-axis breakdown — the only field allowed to
    differ between a legacy ``factor=k`` plan and its ``axes={'dp': k}``
    restatement."""
    d = report.to_dict()
    d.pop("axes")
    return d


class TestScalePlanValidation:
    """Satellite: a typo'd payload-scaling rule or op must fail loudly."""

    def test_unknown_rule_raises_naming_rule_and_valid_set(self):
        with pytest.raises(ValueError) as exc:
            ScalePlan(payload_scaling={"all_gather": "inverze"})
        assert "inverze" in str(exc.value)
        assert "constant" in str(exc.value)
        assert "inverse" in str(exc.value)
        assert "linear" in str(exc.value)

    def test_unknown_op_raises_naming_op_and_valid_set(self):
        with pytest.raises(ValueError) as exc:
            ScalePlan(payload_scaling={"allreduce": "inverse"})
        assert "allreduce" in str(exc.value)
        assert "all_reduce" in str(exc.value)

    def test_scale_axis_rules_validated_too(self):
        with pytest.raises(ValueError, match="snake"):
            ScaleAxis(payload_scaling={"all_gather": "snake"})
        with pytest.raises(ValueError, match="al_gather"):
            ScaleAxis(payload_scaling={"al_gather": "inverse"})

    def test_axes_mutually_exclusive_with_factor(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ScalePlan(factor=2, axes={"dp": 2})
        with pytest.raises(ValueError, match="mutually exclusive"):
            ScalePlan(scale_group=(0, 1), axes={"dp": 2})

    def test_axis_factor_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            ScalePlan(axes={"dp": 0})
        with pytest.raises(ValueError, match="int factor or a ScaleAxis"):
            ScalePlan(axes={"dp": 2.0})
        with pytest.raises(ValueError, match=">= 1"):
            ScaleAxis(factor=0)
        with pytest.raises(ValueError, match="sharded_bytes"):
            ScaleAxis(sharded_bytes=-1)

    def test_total_factor_is_product(self):
        assert ScalePlan(axes={"dp": 8, "tp": 2, "pp": 2}).total_factor() == 32
        assert ScalePlan(factor=7).total_factor() == 7

    def test_unresolvable_axis_names_captured_layout(self):
        trace = _capture_pair(
            lambda: uniform_cluster(2), 2, _tp1d_prog(2)
        )[0]
        with pytest.raises(ValueError, match="tp"):
            project(trace, axes={"tp": 2}, fabric=Fabric.uniform())


class TestHybridAxisParity:
    """``ScalePlan(axes={"dp": k})`` must be bit-for-bit identical to the
    legacy ``ScalePlan(factor=k)`` path across the parallelism grid."""

    @pytest.mark.parametrize("algorithm", ["ring", "tree", "hierarchical"])
    def test_ddp_grid(self, algorithm):
        trace = _capture_pair(
            lambda: uniform_cluster(4), 4, _ddp_prog(overlap=False),
            algorithm=algorithm,
        )[0]
        fabric = Fabric.uniform()
        for k in (1, 2, 8, 64):
            legacy = project(trace, factor=k, fabric=fabric)
            hybrid = project(trace, axes={"dp": k}, fabric=fabric)
            assert _pop_axes(legacy) == _pop_axes(hybrid), k

    @pytest.mark.parametrize("algorithm", ["ring", "hierarchical"])
    def test_zero_grid(self, algorithm):
        trace = _capture_pair(
            lambda: uniform_cluster(2), 2, _zero_prog(False, world=2),
            algorithm=algorithm,
        )[0]
        fabric = Fabric.uniform()
        for k in (2, 16):
            legacy = project(trace, factor=k, fabric=fabric)
            hybrid = project(trace, axes={"dp": k}, fabric=fabric)
            assert _pop_axes(legacy) == _pop_axes(hybrid), k

    @pytest.mark.parametrize("sched_cls", [GPipeSchedule, OneFOneBSchedule])
    def test_pipeline_grid(self, sched_cls):
        trace = _capture_pair(
            lambda: uniform_cluster(4), 4, _pipeline_prog(sched_cls, stages=4),
        )[0]
        fabric = Fabric.uniform()
        for k in (2, 8):
            legacy = project(trace, factor=k, fabric=fabric)
            hybrid = project(trace, axes={"dp": k}, fabric=fabric)
            assert _pop_axes(legacy) == _pop_axes(hybrid), k

    @pytest.mark.parametrize("algorithm", ["ring", "tree"])
    def test_tensor_1d_grid(self, algorithm):
        trace = _capture_pair(
            lambda: uniform_cluster(4), 4, _tp1d_prog(4), algorithm=algorithm,
        )[0]
        fabric = Fabric.uniform()
        for k in (2, 64):
            legacy = project(trace, factor=k, fabric=fabric)
            hybrid = project(trace, axes={"dp": k}, fabric=fabric)
            assert _pop_axes(legacy) == _pop_axes(hybrid), k

    def test_dp_axis_report_breakdown(self, allreduce_trace):
        rep = project(allreduce_trace, axes={"dp": 8},
                      fabric=Fabric.uniform())
        assert len(rep.axes) == 1
        ax = rep.axes[0]
        assert ax.name == "dp" and ax.factor == 8
        assert ax.captured_degree == 4 and ax.projected_degree == 32
        assert ax.multiplicity == 1
        assert ax.wire_elements == rep.wire_elements_total


# -- sharded-memory projection (ISSUE 7 satellite + tentpole) --------------


class TestShardedMemoryProjection:
    def test_legacy_plan_reshards_state(self):
        """Regression: widening a group that shards state must shrink the
        projected peak instead of echoing the captured bytes verbatim."""
        trace = _capture_pair(
            lambda: uniform_cluster(2), 2, _zero_prog(False, world=2),
        )[0]
        captured = max(trace.peak_memory)
        assert captured > 0
        sharded = captured // 2
        fabric = Fabric.uniform()
        base = project(trace, factor=8, fabric=fabric)
        shrunk = project(
            trace, plan=ScalePlan(factor=8, sharded_bytes=sharded),
            fabric=fabric,
        )
        assert base.peak_memory_bytes == captured  # no shards declared
        assert shrunk.peak_memory_bytes < captured
        assert shrunk.peak_memory_bytes == max(
            project_peak_memory(p, [(sharded, 8)]) for p in trace.peak_memory
        )

    def test_subgroup_scale_only_reshards_member_ranks(self):
        """A proper-subgroup scale plan shrinks only the ranks inside the
        scaled group; bystander ranks keep their captured peak."""
        trace = _capture_pair(
            lambda: uniform_cluster(4), 4, _ddp_prog(overlap=False),
        )[0]
        trace.peak_memory = [100, 200, 300, 400]
        rep = project(
            trace,
            plan=ScalePlan(factor=4, scale_group=(0, 1), sharded_bytes=80),
            fabric=Fabric.uniform(),
        )
        peaks = [r.peak_memory_bytes for r in rep.per_rank]
        assert peaks[0] == 100 - 80 + 20  # ceil(80/4) = 20
        assert peaks[1] == 200 - 80 + 20
        assert peaks[2:] == [300, 400]

    def test_overdeclared_shards_clamp_to_captured_peak(self):
        assert project_peak_memory(100, [(1_000_000, 10)]) == 10
        assert project_peak_memory(0, [(64, 4)]) == 0
        assert project_peak_memory(100, []) == 100
        assert project_peak_memory(100, [(50, 1)]) == 100

    def test_composed_shards_stack(self):
        # dp shards 60 bytes 4x, tp shards 30 bytes 2x, 10 bytes replicated
        got = project_peak_memory(100, [(60, 4), (30, 2)])
        assert got == 10 + 15 + 15  # ceil(60/4)=15, ceil(30/2)=15


# -- hybrid DP x TP x PP acceptance ----------------------------------------

TPD, PPD = 2, 2          # captured tensor degree / pipeline depth
HYB_WORLD = 16           # -> dp degree 4
G_ELEMS = 4096           # gradient all-reduce payload (elements)
SYN_PEAK = 32 << 20      # synthetic captured per-rank peak (bytes)


@pytest.fixture(scope="module")
def hybrid_trace():
    """A DP(4) x TP(2) x PP(2) micro-step captured at 16 ranks: two tensor
    all-reduces (fwd+bwd), one boundary send/recv per pipeline chain, one
    gradient all-reduce per data group."""
    cfg = Config.from_dict(
        dict(parallel=dict(tensor=dict(size=TPD, mode="1d"), pipeline=PPD))
    )

    def prog(ctx):
        pc = ParallelContext(ctx, cfg)
        ctx.clock.advance(1e-4, "compute")
        tp = pc.comm(ParallelMode.TENSOR)
        tp.all_reduce(SpecArray((BB, SS, HH), "float32"))
        tp.all_reduce(SpecArray((BB, SS, HH), "float32"))
        pipe = pc.comm(ParallelMode.PIPELINE)
        if not pc.is_last_pipeline_stage():
            pipe.send(SpecArray((BB, SS, HH), "float32"), pc.pp_rank + 1)
        if not pc.is_first_pipeline_stage():
            pipe.recv(pc.pp_rank - 1)
        dp = pc.comm(ParallelMode.DATA)
        dp.all_reduce(SpecArray((G_ELEMS,), "float32"))

    _, trace = capture_run(
        uniform_cluster(HYB_WORLD), prog, world_size=HYB_WORLD,
        materialize=False,
    )
    trace.axes = derive_axis_groups(HYB_WORLD, tensor=TPD, pipeline=PPD)
    # spec-mode payloads never touch the memory pools; give the memory
    # model a deterministic captured peak to project
    trace.peak_memory = [SYN_PEAK] * HYB_WORLD
    return trace


class TestHybridAcceptance:
    """Paper-style 512-rank DP x TP x PP projection from a 16-rank capture
    (ISSUE 7 acceptance criterion): per-axis comm volume matches the
    ``repro.analytic.commvolume`` closed forms and peak memory reflects
    sharded state."""

    FACTORS = {"dp": 8, "tp": 2, "pp": 2}  # 16 * 32 = 512 ranks

    def _project(self, trace, sharded=None):
        plan = hybrid_plan(
            dict(self.FACTORS), world=HYB_WORLD, tensor=TPD, pipeline=PPD,
            sharded_bytes=sharded,
        )
        return project(trace, plan=plan, fabric=Fabric.uniform())

    def test_projects_16_ranks_to_512(self, hybrid_trace):
        rep = self._project(hybrid_trace)
        assert rep.source_world == 16
        assert rep.target_world == 512
        assert rep.factor == 32
        assert {a.name for a in rep.axes} == {"dp", "tp", "pp"}

    def test_tp_axis_volume_matches_closed_form(self, hybrid_trace):
        """8 tensor groups widened 2 -> 4, replicated dp_f*pp_f = 16 times,
        two all-reduces each: Table-1 gives 2(p-1)·bsh per round."""
        rep = self._project(hybrid_trace)
        ax = {a.name: a for a in rep.axes}["tp"]
        assert ax.captured_degree == TPD and ax.projected_degree == 4
        assert ax.num_groups == 8 and ax.multiplicity == 16
        assert ax.wire_elements == 8 * 16 * 2 * comm_volume_1d(4, BB, SS, HH)

    def test_dp_axis_volume_matches_closed_form(self, hybrid_trace):
        """4 data groups widened 4 -> 32, replicated tp_f*pp_f = 4 times,
        one gradient all-reduce each."""
        rep = self._project(hybrid_trace)
        ax = {a.name: a for a in rep.axes}["dp"]
        assert ax.captured_degree == 4 and ax.projected_degree == 32
        assert ax.num_groups == 4 and ax.multiplicity == 4
        assert ax.wire_elements == 4 * 4 * comm_volume_1d(32, 1, 1, G_ELEMS)

    def test_pp_axis_deepens_chain_boundaries(self, hybrid_trace):
        """8 pipeline chains deepened 2 -> 4 stages: captured p2p traffic
        crossed s-1 = 1 boundary, the projected chain crosses k·s-1 = 3,
        and each chain is replicated dp_f*tp_f = 16 times."""
        rep = self._project(hybrid_trace)
        ax = {a.name: a for a in rep.axes}["pp"]
        assert ax.chain
        assert ax.captured_degree == PPD and ax.projected_degree == 4
        nbytes = BB * SS * HH * 4
        assert ax.by_op_bytes["p2p"] == 8 * 16 * 3 * nbytes
        # and the whole-report p2p slice agrees (p2p only runs on chains)
        assert rep.by_op_bytes["p2p"] == 8 * 16 * 3 * nbytes

    def test_sharded_axes_shrink_peak_memory(self, hybrid_trace):
        zero_bytes = 12 << 20   # dp partitions optimizer state
        tp_bytes = 8 << 20      # tp partitions weight shards
        plain = self._project(hybrid_trace)
        rep = self._project(
            hybrid_trace, sharded={"dp": zero_bytes, "tp": tp_bytes}
        )
        assert plain.peak_memory_bytes == SYN_PEAK
        expected = project_peak_memory(
            SYN_PEAK, [(zero_bytes, 8), (tp_bytes, 2)]
        )
        assert rep.peak_memory_bytes == expected < SYN_PEAK
        assert all(r.peak_memory_bytes == expected for r in rep.per_rank)

    def test_hybrid_projection_is_deterministic(self, hybrid_trace):
        a = self._project(hybrid_trace).to_dict()
        b = self._project(hybrid_trace).to_dict()
        assert a == b


class TestComposedAxesProperties:
    @given(
        f1=st.sampled_from([1, 2, 8, 32]),
        f2=st.sampled_from([1, 2, 4]),
    )
    @fast
    def test_composed_volume_matches_table1(self, allreduce_trace, f1, f2):
        """Two axes over the same (world) group compose multiplicatively:
        projected all-reduce volume is the Table-1 closed form at
        ``p·f1·f2`` ranks."""
        plan = ScalePlan(axes={
            "dp": f1,
            "tp": ScaleAxis(factor=f2, groups=(tuple(range(4)),)),
        })
        rep = project(allreduce_trace, plan=plan, fabric=Fabric.uniform())
        p2 = 4 * f1 * f2
        assert rep.target_world == p2
        assert rep.by_op_elements["all_reduce"] == comm_volume_1d(
            p2, BB, SS, HH
        )

    @given(f1=st.sampled_from([2, 8]), f2=st.sampled_from([2, 4]))
    @fast
    def test_composed_projection_is_deterministic(
        self, allreduce_trace, f1, f2
    ):
        def run():
            plan = ScalePlan(axes={
                "dp": f1,
                "tp": ScaleAxis(factor=f2, groups=(tuple(range(4)),)),
            })
            return project(
                allreduce_trace, plan=plan, fabric=Fabric.uniform()
            ).to_dict()

        assert run() == run()


# -- config / launch wiring ------------------------------------------------


class TestLaunchWiring:
    def test_launch_project_mode_returns_report(self):
        from repro.engine.initialize import launch

        def fn(ctx, pc):
            comm = Communicator.world(ctx)
            ctx.clock.advance(1e-4, "compute")
            comm.all_reduce(np.ones((32, 32), dtype=np.float32))

        rep = launch(
            {"project": {"target_world": 512}}, uniform_cluster(8), fn,
            world_size=8,
        )
        assert rep.target_world == 512
        assert rep.factor == 64
        assert rep.step_time > 0

    def test_launch_project_requires_divisible_target(self):
        from repro.engine.initialize import launch

        with pytest.raises(ValueError, match="multiple"):
            launch(
                {"project": {"target_world": 100}}, uniform_cluster(8),
                lambda ctx, pc: None, world_size=8,
            )

    def test_config_validation(self):
        cfg = Config.from_dict({"project": {"target_world": 64}})
        assert cfg.project.mode == "project"
        with pytest.raises(ValueError, match="mode"):
            Config.from_dict({"project": {"mode": "sideways"}})
        with pytest.raises(ValueError, match="target_world"):
            Config.from_dict(
                {"project": {"mode": "off", "target_world": 4}}
            )

    def test_config_axes_validation(self):
        cfg = Config.from_dict({"project": {"axes": {"dp": 8, "tp": 2}}})
        assert cfg.project.mode == "project"
        assert cfg.project.axes == {"dp": 8, "tp": 2}
        with pytest.raises(ValueError, match="unknown axis"):
            Config.from_dict({"project": {"axes": {"zp": 2}}})
        with pytest.raises(ValueError, match="int >= 1"):
            Config.from_dict({"project": {"axes": {"dp": 0}}})
        with pytest.raises(ValueError, match="int >= 1"):
            Config.from_dict({"project": {"axes": {"dp": 2.5}}})
        with pytest.raises(ValueError, match="non-empty"):
            Config.from_dict({"project": {"axes": {}, "mode": "project"}})
        cfg = Config.from_dict({})
        cfg.project.axes = {"dp": 2}
        with pytest.raises(ValueError, match="project.axes requires"):
            cfg.validate()

    def test_launch_hybrid_axes_returns_per_axis_report(self):
        from repro.engine.initialize import launch

        def fn(ctx, pc):
            ctx.clock.advance(1e-4, "compute")
            tp = pc.comm(ParallelMode.TENSOR)
            tp.all_reduce(SpecArray((BB, SS, HH), "float32"))
            dp = pc.comm(ParallelMode.DATA)
            dp.all_reduce(SpecArray((G_ELEMS,), "float32"))

        rep = launch(
            {
                "parallel": {"tensor": {"size": 2, "mode": "1d"}},
                "project": {"axes": {"dp": 16, "tp": 2}},
            },
            uniform_cluster(8), fn, world_size=8,
        )
        assert rep.target_world == 8 * 32
        assert rep.factor == 32
        assert {a.name for a in rep.axes} == {"dp", "tp"}
        tp_ax = {a.name: a for a in rep.axes}["tp"]
        assert tp_ax.captured_degree == 2 and tp_ax.projected_degree == 4

    def test_launch_hybrid_axes_target_world_must_agree(self):
        from repro.engine.initialize import launch

        with pytest.raises(ValueError, match="disagrees"):
            launch(
                {"project": {"axes": {"dp": 4}, "target_world": 100}},
                uniform_cluster(8), lambda ctx, pc: None, world_size=8,
            )
