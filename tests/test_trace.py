"""Tracing layer: clock-span reconciliation, pipeline bubbles, Chrome
trace-event schema, zero/trainer instrumentation."""

import json
from collections import defaultdict

import numpy as np
import pytest

import repro
from repro.cluster import uniform_cluster
from repro.comm.communicator import Communicator
from repro.config import Config
from repro.context import ParallelContext
from repro.nn import Linear, Module, ModuleList
from repro.parallel.pipeline import GPipeSchedule, OneFOneBSchedule
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor
from repro.trace import TraceReport, Tracer, chrome_trace, save_chrome_trace


def _mixed_program(ctx):
    """Compute imbalance + collectives + p2p ring: every span source."""
    comm = Communicator.world(ctx)
    x = np.full((8, 4), float(ctx.rank + 1), dtype=np.float32)
    ctx.clock.advance(0.001 * (ctx.rank + 1), "compute")
    comm.all_reduce(x)
    comm.all_gather(x, axis=0)
    comm.send(x, (ctx.rank + 1) % ctx.world_size, tag="ring")
    comm.recv((ctx.rank - 1) % ctx.world_size, tag="ring")


class _Stage(Module):
    """Pipeline stage of ``depth`` stacked Linear layers."""

    def __init__(self, width: int, depth: int, rng) -> None:
        super().__init__()
        self.layers = ModuleList(
            [Linear(width, width, rng=rng) for _ in range(depth)]
        )

    def forward(self, x):
        for l in self.layers:
            x = l(x)
        return x


def _run_imbalanced_pipeline(tracer, schedule_cls=GPipeSchedule, micro=4):
    """4-stage pipeline where stage 0 carries 4x the layers of the rest, so
    downstream stages stall (bubble) waiting for it."""
    width, batch = 16, 8
    depths = [8, 2, 2, 2]
    rt = SpmdRuntime(uniform_cluster(4), tracer=tracer)

    def prog(ctx):
        pc = ParallelContext(ctx, Config.from_dict(dict(parallel=dict(pipeline=4))))
        stage = _Stage(width, depths[pc.pp_rank], np.random.default_rng(pc.pp_rank))
        sched = schedule_cls(pc, micro)
        data = (
            np.ones((batch, width), dtype=np.float32)
            if pc.is_first_pipeline_stage() else None
        )
        crit = (lambda out, y: out.sum()) if pc.is_last_pipeline_stage() else None
        sched.run(stage, data, None, crit)

    rt.run(prog)
    return rt


class TestClockSpans:
    def test_reconciles_with_breakdown(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(4), tracer=tracer)
        rt.run(_mixed_program)
        for rank, clock in enumerate(rt.clocks):
            traced = tracer.clock_breakdown(rank)
            actual = clock.breakdown()
            assert set(traced) == set(actual)
            for cat, seconds in actual.items():
                assert traced[cat] == pytest.approx(seconds, rel=1e-9, abs=1e-12)

    def test_span_total_equals_clock_time(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(4), tracer=tracer)
        rt.run(_mixed_program)
        for rank, clock in enumerate(rt.clocks):
            total = sum(tracer.clock_breakdown(rank).values())
            assert total == pytest.approx(clock.time, rel=1e-9)

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(4))
        rt.run(_mixed_program)
        assert tracer.spans() == []

    def test_uninstall_stops_recording(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(4), tracer=tracer)
        rt.run(_mixed_program)
        n = len(tracer.spans())
        assert n > 0
        tracer.uninstall()
        assert rt.tracer is None
        rt.run(_mixed_program)
        assert len(tracer.spans()) == n

    def test_clear_resets_between_runs(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(2), tracer=tracer)
        rt.run(_mixed_program)
        tracer.clear()
        assert tracer.spans() == [] and tracer.ranks() == []


class TestAnnotations:
    def test_collective_spans_carry_round_totals(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(4), tracer=tracer)
        rt.run(_mixed_program)
        spans = tracer.spans(cat="collective")
        by_op = defaultdict(list)
        for s in spans:
            by_op[s.name].append(s)
        # every rank records one span per round
        assert len(by_op["all_reduce"]) == 4
        assert len(by_op["all_gather"]) == 4
        # exactly one primary per round, carrying nonzero wire bytes
        primaries = [s for s in by_op["all_reduce"] if s.args.get("primary")]
        assert len(primaries) == 1
        assert primaries[0].args["wire_bytes"] > 0
        # all members end at the same completion time
        assert len({s.t1 for s in by_op["all_reduce"]}) == 1

    def test_p2p_and_rank_lifecycle_spans(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(4), tracer=tracer)
        rt.run(_mixed_program)
        assert len(tracer.spans(cat="p2p")) == 8  # 4 sends + 4 recvs
        ranks = {s.rank for s in tracer.spans(cat="rank")}
        assert ranks == {0, 1, 2, 3}

    def test_retry_spans_under_faults(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=3).glitch(op="all_reduce", attempts=2)
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan, tracer=tracer)

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones(4, dtype=np.float32))

        rt.run(prog)
        retries = tracer.spans(cat="retry")
        assert retries and all(s.duration > 0 for s in retries)


class TestPipelineTrace:
    @pytest.mark.parametrize("schedule_cls", [GPipeSchedule, OneFOneBSchedule])
    def test_bubble_fraction_nonzero_on_imbalance(self, schedule_cls):
        tracer = Tracer()
        _run_imbalanced_pipeline(tracer, schedule_cls)
        report = TraceReport.from_tracer(tracer)
        assert report.bubble_fraction() > 0.0
        # the overloaded first stage never stalls on a forward receive
        stalls = [s for s in tracer.spans(cat="bubble") if s.rank == 0]
        fwd_stalls = [s for s in stalls if s.name.startswith("fwd")]
        assert fwd_stalls == []

    def test_microbatch_spans_cover_all_stages(self):
        tracer = Tracer()
        _run_imbalanced_pipeline(tracer, micro=4)
        pipe = tracer.spans(cat="pipeline")
        fwd = [s for s in pipe if s.name.startswith("fwd/")]
        bwd = [s for s in pipe if s.name.startswith("bwd/")]
        assert len(fwd) == 4 * 4 and len(bwd) == 4 * 4  # stages x microbatches
        assert {s.args["stage"] for s in pipe} == {0, 1, 2, 3}

    def test_report_reconciles_and_formats(self):
        tracer = Tracer()
        rt = _run_imbalanced_pipeline(tracer)
        report = TraceReport.from_tracer(tracer)
        for rank, clock in enumerate(rt.clocks):
            b = clock.breakdown()
            for cat, seconds in b.items():
                assert report.per_rank[rank][cat] == pytest.approx(
                    seconds, rel=1e-9, abs=1e-12
                )
            assert report.per_rank_total[rank] == pytest.approx(clock.time)
        text = report.format()
        assert "pipeline bubble fraction" in text
        assert "per-rank time breakdown" in text


def _validate_trace_events(doc):
    """Schema checks: required keys, monotonic ts per lane, balanced B/E."""
    assert "traceEvents" in doc
    lanes = defaultdict(list)
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("B", "E", "M", "i", "C")
        assert "pid" in ev and "tid" in ev and "name" in ev
        if ev["ph"] in ("B", "E"):
            lanes[ev["tid"]].append(ev)
    assert lanes, "no duration events in trace"
    for tid, events in lanes.items():
        depth, last_ts = 0, float("-inf")
        for ev in events:
            assert ev["ts"] >= last_ts, f"lane {tid}: ts went backwards"
            last_ts = ev["ts"]
            depth += 1 if ev["ph"] == "B" else -1
            assert depth >= 0, f"lane {tid}: E without matching B"
        assert depth == 0, f"lane {tid}: {depth} unclosed B events"


@pytest.mark.trace
class TestChromeExport:
    def test_smoke_pipeline_trace_schema(self, tmp_path):
        """The satellite smoke test: tiny 4-rank pipeline-parallel step with
        tracing on, exported to Chrome trace JSON, validated against the
        trace-event schema."""
        tracer = Tracer()
        rt = _run_imbalanced_pipeline(tracer)
        path = save_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path) as f:
            doc = json.load(f)
        _validate_trace_events(doc)
        # per-rank clock spans in the JSON reconcile with the breakdown
        for rank, clock in enumerate(rt.clocks):
            total = sum(tracer.clock_breakdown(rank).values())
            assert total == pytest.approx(clock.time, rel=1e-9)

    def test_thread_metadata_and_counters(self):
        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(2), tracer=tracer)

        def prog(ctx):
            ctx.clock.advance(1e-3, "compute")
            tracer.sample_memory(ctx.rank, ctx.device, ctx.clock.time)

        rt.run(prog)
        doc = chrome_trace(tracer)
        names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names == ["rank 0", "rank 1"]
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 2
        assert all("allocated" in e["args"] for e in counters)


class TestTrainerAndZeroSpans:
    def test_trainer_step_and_checkpoint_spans(self):
        from repro.data import DataLoader, synthetic_image_classification
        from repro.nn import CrossEntropyLoss
        from repro.optim import SGD
        from repro.trainer import CheckpointManager, Trainer

        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(1), tracer=tracer)
        X, Y = synthetic_image_classification(
            16, image_size=4, channels=1, n_classes=3, noise=0.3, seed=1
        )

        def prog(ctx):
            pc = ParallelContext(ctx, Config.from_dict({}))
            model = Linear(X.shape[1] * X.shape[2] * X.shape[3], 3,
                           rng=np.random.default_rng(0))
            engine = repro.initialize(
                model, SGD(model.parameters(), lr=0.01),
                criterion=CrossEntropyLoss(), pc=pc,
            )
            trainer = Trainer(
                engine,
                shard_input=lambda x: x.reshape(len(x), -1),
                checkpoint=CheckpointManager(),
                checkpoint_every=2,
            )
            trainer.fit(DataLoader(X, Y, batch_size=4, seed=0), epochs=1)

        rt.run(prog)
        steps = tracer.spans(cat="step")
        assert [s.name for s in steps] == ["step1", "step2", "step3", "step4"]
        ckpts = tracer.spans(cat="checkpoint")
        assert [s.name for s in ckpts] == ["ckpt@step2", "ckpt@step4"]
        # memory sampled once per step
        assert len(tracer.counters()) == 4

    def test_zero_engine_spans_and_memory_samples(self):
        from repro.zero.policies import StaticPolicy
        from repro.zero.engine import ZeroOffloadEngine

        tracer = Tracer()
        rt = SpmdRuntime(uniform_cluster(2), tracer=tracer)

        def prog(ctx):
            from repro.comm.cost import CostModel

            rng = np.random.default_rng(0)
            blocks = [Linear(8, 8, rng=rng) for _ in range(2)]
            policy = StaticPolicy(
                ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank
            )
            eng = ZeroOffloadEngine(
                ctx, blocks, Communicator.world(ctx),
                policy, criterion=lambda out, y: out.sum(),
                chunk_mb=0.001, param_dtype="float32",
            )
            eng.train_step(np.ones((4, 8), dtype=np.float32))

        rt.run(prog)
        zero = tracer.spans(cat="zero")
        kinds = {s.name.split("/")[0] for s in zero}
        assert {"fetch", "release", "adam"} <= kinds
        assert tracer.counters(), "memory samples missing"
        assert [s.name for s in tracer.spans(cat="step") if s.rank == 0] == [
            "zero_step1"
        ]
