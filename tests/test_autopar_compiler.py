"""Auto-parallel strategy compiler (ISSUE 9): search properties,
prediction-vs-simulation parity, config emission, and the advisor's
ZeRO-aware memory feasibility fix.

The compiler's contract, tested here:

* **Feasibility** — it never emits a plan whose analytic memory exceeds
  the device pool; when nothing fits it raises with the rejection census.
* **Optimality (analytic)** — with ``refine=False`` the chosen plan's
  analytic step time is <= every enumerated feasible candidate's.
* **Valid emission** — every emitted config round-trips
  ``Config.from_dict`` and reproduces the candidate's decisions.
* **Determinism** — same inputs, same chosen plan, same predicted time
  (ties break on the candidate sort key, never on dict/hash order).
* **Parity** — the projector-refined step time of a shortlisted candidate
  equals an independent threaded simulation of the same skeleton
  **bit-for-bit** when the probe runs at the target world size (recorded
  mode).  When the probe is captured at a reduced data-parallel degree
  and model-mode projected, the documented tolerance is 10% (the pipeline
  chain-widening term is approximate; pure DP/TP widening on a uniform
  fabric is near-exact).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.autopar.advisor import ParallelPlan, Workload, estimate_plan
from repro.autopar.compiler import (
    compile_strategy,
    probe_scale,
    refine_candidate,
    simulate_candidate,
)
from repro.autopar.scoring import (
    _CostCache,
    score_candidate,
    tp_layer_ops,
    tp_subgroups,
)
from repro.autopar.search import (
    SearchSpace,
    StrategyCandidate,
    enumerate_candidates,
)
from repro.cluster import system_i, system_ii, uniform_cluster
from repro.config import Config
from repro.engine import launch

pytestmark = pytest.mark.autopar

WORK = Workload(n_layers=4, hidden=256, n_heads=4, seq_len=64)
FIG11_WORK = Workload(n_layers=16, hidden=3072, n_heads=48, seq_len=196)


# -- candidate enumeration --------------------------------------------------


class TestEnumeration:
    def test_deterministic_order(self):
        a = list(enumerate_candidates(WORK, 128, 8))
        b = list(enumerate_candidates(WORK, 128, 8))
        assert a == b and len(a) > 0

    def test_structural_invariants(self):
        for cand in enumerate_candidates(WORK, 128, 8):
            assert cand.world == 8
            assert 128 % (cand.data * cand.microbatches) == 0
            assert cand.pipeline <= WORK.n_layers
            if cand.pipeline == 1:
                assert cand.schedule == "gpipe" and cand.microbatches == 1
            if cand.data == 1:
                assert cand.zero_stage == 0 and not cand.overlap
            if cand.mode == "2d":
                q = math.isqrt(cand.tensor)
                assert q * q == cand.tensor
            if cand.mode in ("1d", "sequence") and cand.tensor > 1:
                assert WORK.n_heads % cand.tensor == 0

    def test_space_validation(self):
        with pytest.raises(ValueError, match="schedule"):
            SearchSpace(schedules=("interleaved",)).validate()
        with pytest.raises(ValueError, match="ZeRO"):
            SearchSpace(zero_stages=(4,)).validate()
        with pytest.raises(ValueError, match="algorithm"):
            SearchSpace(algorithms=("nccl",)).validate()

    @given(
        world=st.sampled_from([2, 4, 6, 8, 12, 16]),
        batch_per=st.sampled_from([8, 16, 24]),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_decomposition_always_exact(self, world, batch_per):
        for cand in enumerate_candidates(WORK, batch_per * world, world):
            assert cand.data * cand.tensor * cand.pipeline == world

    def test_subgroups_partition_tensor_ranks(self):
        for cand in [
            StrategyCandidate(data=1, tensor=4, mode="2d", pipeline=1),
            StrategyCandidate(data=1, tensor=8, mode="2.5d", pipeline=1,
                              depth=2),
            StrategyCandidate(data=1, tensor=8, mode="3d", pipeline=1),
        ]:
            for fam in tp_subgroups(cand).values():
                covered = sorted(r for sub in fam for r in sub)
                assert covered == list(range(cand.tensor))


# -- analytic scoring / feasibility -----------------------------------------


class TestScoring:
    def test_never_emits_infeasible(self):
        cl = uniform_cluster(8, memory_gb=16)
        cs = compile_strategy(cl, WORK, 128, refine=False)
        assert cs.score.feasible
        assert cs.score.memory_bytes <= cl.gpus[0].memory_capacity

    def test_raises_when_nothing_fits(self):
        big = Workload(n_layers=48, hidden=8192, n_heads=64, seq_len=2048)
        cl = uniform_cluster(2, memory_gb=1)
        with pytest.raises(ValueError, match="no feasible candidate"):
            compile_strategy(cl, big, 64, refine=False)

    def test_rejection_reasons_recorded(self):
        big = Workload(n_layers=24, hidden=4096, n_heads=32, seq_len=1024)
        cl = uniform_cluster(8, memory_gb=12)
        cs = compile_strategy(cl, big, 64, refine=False)
        rejected = [s for s in cs.report.scored if not s.feasible]
        assert rejected, "scenario expected to reject some candidates"
        assert all(s.reason.startswith("out of memory") for s in rejected)
        assert "rejected" in cs.report.format()

    def test_chosen_is_analytic_minimum(self):
        cl = uniform_cluster(8, memory_gb=16)
        cs = compile_strategy(cl, WORK, 128, refine=False)
        cache = _CostCache(cl)
        for cand in enumerate_candidates(WORK, 128, 8):
            s = score_candidate(cl, WORK, cand, 128, cache)
            if s.feasible:
                assert cs.score.step_seconds <= s.step_seconds

    @given(
        world=st.sampled_from([2, 4, 8]),
        memory_gb=st.sampled_from([2, 8, 32]),
    )
    @settings(max_examples=9, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_feasible_or_raises(self, world, memory_gb):
        cl = uniform_cluster(world, memory_gb=memory_gb)
        try:
            cs = compile_strategy(cl, WORK, 16 * world, refine=False)
        except ValueError:
            return  # nothing fits: acceptable outcome, never a bad plan
        assert cs.score.feasible
        assert cs.score.memory_bytes <= cl.gpus[0].memory_capacity

    def test_tp_ops_shared_by_probe_and_scorer(self):
        """The op records are the single source of truth: every record's
        group family must exist for its candidate's mode."""
        for cand in [
            StrategyCandidate(data=2, tensor=4, mode="1d", pipeline=1),
            StrategyCandidate(data=2, tensor=4, mode="2d", pipeline=1),
            StrategyCandidate(data=1, tensor=8, mode="2.5d", pipeline=1,
                              depth=2),
            StrategyCandidate(data=1, tensor=8, mode="3d", pipeline=1),
            StrategyCandidate(data=2, tensor=4, mode="sequence", pipeline=1),
        ]:
            groups = tp_subgroups(cand)
            ops = tp_layer_ops(WORK, cand, 8)
            assert ops, cand.mode
            for op in ops:
                assert op.group in groups
                assert op.nbytes >= 1


# -- config emission --------------------------------------------------------


class TestConfigEmission:
    def test_all_candidates_round_trip(self):
        for cand in enumerate_candidates(WORK, 128, 8):
            cfg = Config.from_dict(cand.to_config_dict(WORK))
            assert cfg.tensor.size == cand.tensor
            if cand.tensor > 1:
                assert cfg.tensor.mode == cand.mode
            else:
                assert cfg.tensor.mode == "none"
            assert cfg.pipeline == cand.pipeline
            assert cfg.data == cand.data
            assert cfg.num_microbatches == cand.microbatches
            assert cfg.zero.stage == cand.zero_stage
            assert cfg.comm.algorithm == cand.algorithm
            assert cfg.comm.overlap == cand.overlap
            if cand.pipeline > 1:
                assert cfg.pipeline_schedule == cand.schedule
            assert cfg.infer_data_size(cand.world) == cand.data

    def test_compiled_config_validates(self):
        cl = uniform_cluster(8, memory_gb=16)
        cs = compile_strategy(cl, WORK, 128, refine=False)
        cfg = cs.build_config()
        assert cfg.infer_data_size(8) == cs.candidate.data

    def test_apply_to_preserves_unrelated_settings(self):
        cl = uniform_cluster(8, memory_gb=16)
        cs = compile_strategy(cl, WORK, 128, refine=False)
        base = Config.from_dict(dict(
            seed=7, gradient_clipping=1.0,
            autopar=dict(workload=dict(n_layers=4, hidden=256, n_heads=4,
                                       seq_len=64)),
        ))
        merged = cs.apply_to(base)
        assert merged.seed == 7
        assert merged.gradient_clipping == 1.0
        assert not merged.autopar.enabled  # consumed
        assert merged.tensor.size == cs.candidate.tensor
        assert merged.pipeline_schedule == cs.candidate.schedule

    def test_autopar_config_validation(self):
        with pytest.raises(ValueError, match="workload"):
            Config.from_dict(dict(autopar=dict(enabled=True)))
        with pytest.raises(ValueError, match="missing required"):
            Config.from_dict(dict(autopar=dict(workload=dict(hidden=64))))
        with pytest.raises(ValueError, match="pipeline schedule"):
            Config.from_dict(dict(pipeline_schedule="interleaved"))


# -- determinism ------------------------------------------------------------


class TestDeterminism:
    def test_repeated_compiles_identical(self):
        cl = uniform_cluster(8, memory_gb=16)
        a = compile_strategy(cl, WORK, 128, top_k=2)
        b = compile_strategy(cl, WORK, 128, top_k=2)
        assert a.candidate == b.candidate
        assert a.predicted_step_seconds == b.predicted_step_seconds
        assert a.config == b.config


# -- prediction-vs-simulation parity (acceptance grid) ----------------------


def _grid_candidate(kind: str, world: int, algo: str) -> StrategyCandidate:
    if kind == "dp":
        return StrategyCandidate(data=world, tensor=1, mode="1d",
                                 pipeline=1, algorithm=algo)
    if kind == "tp1d":
        return StrategyCandidate(data=world // 2, tensor=2, mode="1d",
                                 pipeline=1, algorithm=algo)
    return StrategyCandidate(data=world // 2, tensor=1, mode="1d",
                             pipeline=2, schedule="gpipe", microbatches=4,
                             algorithm=algo)


class TestPredictionParity:
    """Acceptance criterion: the compiler's projector-refined step time
    equals the threaded simulation of the same skeleton bit-for-bit in
    recorded mode, across worlds 4-16 x {DP, 1D-TP, GPipe} x
    {ring, tree}."""

    @pytest.mark.parametrize("world", [4, 8, 16])
    @pytest.mark.parametrize("algo", ["ring", "tree"])
    @pytest.mark.parametrize("kind", ["dp", "tp1d", "gpipe"])
    def test_recorded_mode_exact(self, world, algo, kind):
        cand = _grid_candidate(kind, world, algo)
        cl = uniform_cluster(world)
        batch = 16 * world
        s = score_candidate(cl, WORK, cand, batch, _CostCache(cl))
        r = refine_candidate(cl, WORK, cand, batch, s, max_probe_world=16)
        assert r is not None and r.mode == "recorded"
        sim = simulate_candidate(cl, WORK, cand, batch, s.compute_seconds)
        assert r.step_seconds == sim  # bit-for-bit

    @pytest.mark.parametrize("overlap", [False, True])
    def test_recorded_mode_exact_zero_overlap(self, overlap):
        cand = StrategyCandidate(data=4, tensor=2, mode="1d", pipeline=2,
                                 schedule="1f1b", microbatches=4,
                                 zero_stage=2, overlap=overlap,
                                 algorithm="ring")
        cl = uniform_cluster(16)
        s = score_candidate(cl, WORK, cand, 256, _CostCache(cl))
        r = refine_candidate(cl, WORK, cand, 256, s, max_probe_world=16)
        assert r is not None and r.mode == "recorded"
        sim = simulate_candidate(cl, WORK, cand, 256, s.compute_seconds)
        assert r.step_seconds == sim

    def test_model_mode_documented_tolerance(self):
        """Reduced-DP capture + model-mode widening: within 10% of the
        full threaded simulation (exactness is only promised in recorded
        mode)."""
        cl = uniform_cluster(16)
        for cand in [
            StrategyCandidate(data=16, tensor=1, mode="1d", pipeline=1,
                              algorithm="ring"),
            StrategyCandidate(data=4, tensor=2, mode="1d", pipeline=2,
                              microbatches=4, algorithm="ring"),
        ]:
            s = score_candidate(cl, WORK, cand, 256, _CostCache(cl))
            r = refine_candidate(cl, WORK, cand, 256, s, max_probe_world=4)
            assert r is not None and r.mode == "model" and r.dp_factor == 4
            sim = simulate_candidate(cl, WORK, cand, 256, s.compute_seconds)
            assert r.step_seconds == pytest.approx(sim, rel=0.10)

    def test_probe_scale_never_exceeds_budget(self):
        for cand in enumerate_candidates(WORK, 128, 16):
            scale = probe_scale(cand, 8)
            if scale is None:
                assert cand.tensor * cand.pipeline > 8
                continue
            probe_data, factor = scale
            assert probe_data * factor == cand.data
            assert probe_data * cand.tensor * cand.pipeline <= 8

    def test_compile_predicted_equals_simulation(self):
        """End to end: compile_strategy's predicted step time is the
        simulator's step time for the winning plan, exactly."""
        cl = uniform_cluster(8)
        cs = compile_strategy(cl, WORK, 128, top_k=3)
        assert cs.refined is not None and cs.refined.mode == "recorded"
        sim = simulate_candidate(cl, WORK, cs.candidate, 128,
                                 cs.score.compute_seconds)
        assert cs.predicted_step_seconds == sim


# -- Fig 11: hardware-dependent mode switch ---------------------------------


class TestFig11ModeSwitch:
    """System I (uniform NVLink) prefers 1D at tensor=4; System II
    (pairwise NVLink + PCIe) flips to 2D — in both the analytic stage and
    the projector-refined estimate."""

    def _mode_times(self, cluster, refine):
        times = {}
        cache = _CostCache(cluster)
        for mode in ("1d", "2d"):
            cand = StrategyCandidate(data=2, tensor=4, mode=mode,
                                     pipeline=1, algorithm="auto")
            s = score_candidate(cluster, FIG11_WORK, cand, 256, cache)
            assert s.feasible
            if refine:
                r = refine_candidate(cluster, FIG11_WORK, cand, 256, s)
                times[mode] = r.step_seconds
            else:
                times[mode] = s.step_seconds
        return times

    @pytest.mark.parametrize("refine", [False, True])
    def test_system_i_prefers_1d(self, refine):
        t = self._mode_times(system_i(), refine)
        assert t["1d"] < t["2d"]

    @pytest.mark.parametrize("refine", [False, True])
    def test_system_ii_prefers_2d(self, refine):
        t = self._mode_times(system_ii(), refine)
        assert t["2d"] < t["1d"]


# -- advisor ZeRO memory feasibility (regression) ---------------------------


class TestAdvisorZeroFeasibility:
    """The advisor priced every plan's memory ZeRO-free and rejected
    configurations the paper runs; ``estimate_plan(..., zero_stage=)`` now
    partitions the partitionable slice across the DP group."""

    # ~1.2e9 params: 16 B/param model data (19.3 GiB) exceeds a 16 GiB
    # device ZeRO-free, but ZeRO-3 over dp=8 partitions it to ~2.4 GiB
    BIG = Workload(n_layers=24, hidden=2048, n_heads=16, seq_len=128)
    PLAN = ParallelPlan(data=8, tensor=1, mode="1d", pipeline=1)

    def test_previously_rejected_plan_now_feasible(self):
        cl = uniform_cluster(8, memory_gb=16)
        without = estimate_plan(cl, self.BIG, self.PLAN, 64, zero_stage=0)
        with_zero = estimate_plan(cl, self.BIG, self.PLAN, 64, zero_stage=3)
        assert not without.fits
        assert with_zero.fits
        assert "zero3" in with_zero.notes
        assert with_zero.memory_bytes < without.memory_bytes

    def test_compiler_exploits_zero_feasibility(self):
        """The compiler reaches plans that are only feasible under ZeRO."""
        cl = uniform_cluster(8, memory_gb=16)
        cs = compile_strategy(cl, self.BIG, 64, refine=False)
        zero_free = [
            s for s in cs.report.scored
            if s.candidate == cs.candidate and s.feasible
        ]
        assert zero_free  # the chosen plan is in the report
        # the dp8/tp1/pp1 decomposition is infeasible at zero_stage=0
        flat = [
            s for s in cs.report.scored
            if s.candidate.data == 8 and s.candidate.zero_stage == 0
            and s.candidate.pipeline == 1 and s.candidate.tensor == 1
        ]
        assert flat and all(not s.feasible for s in flat)


# -- launch wiring ----------------------------------------------------------


class TestLaunchWiring:
    def test_launch_compiles_and_runs(self):
        cl = uniform_cluster(4, memory_gb=16)
        cfg = dict(
            autopar=dict(
                workload=dict(n_layers=4, hidden=256, n_heads=4, seq_len=64),
                global_batch=32,
                refine=False,
            ),
        )

        def fn(ctx, pc):
            return (pc.data_size, pc.tensor_size, pc.pipeline_size)

        results = launch(cfg, cl, fn, world_size=4, materialize=False)
        assert len(results) == 4
        d, t, p = results[0]
        assert d * t * p == 4
        assert all(r == results[0] for r in results)

    def test_initialize_selects_1f1b_schedule(self):
        import numpy as np

        from repro.engine import initialize
        from repro.nn import Linear
        from repro.optim import Adam

        cl = uniform_cluster(2, memory_gb=16)
        cfg = dict(parallel=dict(pipeline=2), num_microbatches=2,
                   pipeline_schedule="1f1b")

        def fn(ctx, pc):
            model = Linear(4, 4, rng=np.random.default_rng(1))
            engine = initialize(model, Adam(model.parameters()), pc=pc)
            return type(engine.schedule).__name__

        results = launch(cfg, cl, fn, world_size=2)
        assert results == ["OneFOneBSchedule"] * 2
