"""Tests for the SPMD runtime: clocks, launching, failure propagation."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.runtime import RemoteRankError, SimClock, SpmdRuntime, spmd_launch
from repro.runtime.spmd import current_rank_context, in_spmd


class TestSimClock:
    def test_advance(self):
        c = SimClock()
        c.advance(1.5)
        assert c.time == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_sync_to_forward_only(self):
        c = SimClock()
        c.advance(2.0)
        c.sync_to(1.0)
        assert c.time == 2.0
        c.sync_to(3.0)
        assert c.time == 3.0

    def test_breakdown_categories(self):
        c = SimClock()
        c.advance(1.0, "compute")
        c.advance(0.5, "comm")
        c.sync_to(2.0, "wait")
        b = c.breakdown()
        assert b["compute"] == 1.0
        assert b["comm"] == 0.5
        assert b["wait"] == pytest.approx(0.5)

    def test_reset(self):
        c = SimClock()
        c.advance(1.0)
        c.reset()
        assert c.time == 0.0
        assert c.breakdown() == {}


class TestSpmdRuntime:
    def test_all_ranks_run(self, rt4):
        res = rt4.run(lambda ctx: ctx.rank * 10)
        assert res == [0, 10, 20, 30]

    def test_context_fields(self, rt4):
        def prog(ctx):
            assert in_spmd()
            assert current_rank_context() is ctx
            assert ctx.world_size == 4
            assert ctx.device.name == f"gpu{ctx.rank}"
            assert ctx.cpu.kind.value == "cpu"
            return True

        assert all(rt4.run(prog))

    def test_no_context_outside(self):
        assert not in_spmd()
        with pytest.raises(RuntimeError):
            current_rank_context()

    def test_failure_propagates(self, rt4):
        def prog(ctx):
            if ctx.rank == 1:
                raise ValueError("boom")
            from repro.comm import Communicator

            Communicator.world(ctx).barrier()

        with pytest.raises(RemoteRankError) as ei:
            rt4.run(prog)
        assert ei.value.rank == 1
        assert isinstance(ei.value.cause, ValueError)

    def test_rerun_after_failure(self, rt4):
        def bad(ctx):
            raise RuntimeError("x")

        with pytest.raises(RemoteRankError):
            rt4.run(bad)
        # runtime is reusable
        assert rt4.run(lambda ctx: ctx.rank) == [0, 1, 2, 3]

    def test_world_size_cap(self, cluster4):
        with pytest.raises(ValueError):
            SpmdRuntime(cluster4, world_size=8)

    def test_sub_world(self, cluster4):
        rt = SpmdRuntime(cluster4, world_size=2)
        assert rt.run(lambda ctx: ctx.world_size) == [2, 2]

    def test_seed_per_rank_distinct(self, rt4):
        res = rt4.run(lambda ctx: float(ctx.rng.random()))
        assert len(set(res)) == 4

    def test_seed_reproducible(self, cluster4):
        a = SpmdRuntime(cluster4).run(lambda ctx: float(ctx.rng.random()), seed=5)
        b = SpmdRuntime(cluster4).run(lambda ctx: float(ctx.rng.random()), seed=5)
        assert a == b

    def test_materialize_flag(self, rt4):
        res = rt4.run(lambda ctx: ctx.materialize, materialize=False)
        assert res == [False] * 4

    def test_clocks_reset_between_runs(self, rt4):
        def prog(ctx):
            ctx.clock.advance(1.0)
            return ctx.clock.time

        assert rt4.run(prog) == [1.0] * 4
        assert rt4.run(prog) == [1.0] * 4

    def test_max_time(self, rt4):
        def prog(ctx):
            ctx.clock.advance(float(ctx.rank))

        rt4.run(prog)
        assert rt4.max_time() == 3.0

    def test_group_idempotent(self, rt4):
        def prog(ctx):
            g1 = ctx.runtime.group([0, 1])
            g2 = ctx.runtime.group([0, 1])
            return id(g1) == id(g2)

        assert all(rt4.run(prog))

    def test_spmd_launch_helper(self):
        res = spmd_launch(uniform_cluster(2), lambda ctx: ctx.rank + 1)
        assert res == [1, 2]
