"""Tests for repro.utils."""

import time

import pytest

from repro.utils import GB, KB, MB, MultiTimer, Timer, format_bytes, get_logger


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_format_bytes_gib(self):
        assert format_bytes(3 * GB) == "3.00 GiB"

    def test_format_bytes_mib(self):
        assert format_bytes(int(2.5 * MB)) == "2.50 MiB"

    def test_format_bytes_small(self):
        assert format_bytes(17) == "17 B"

    def test_format_bytes_negative(self):
        assert "GiB" in format_bytes(-2 * GB)


class TestTimer:
    def test_basic_interval(self):
        t = Timer()
        t.start()
        time.sleep(0.01)
        dt = t.stop()
        assert dt >= 0.009
        assert t.elapsed == pytest.approx(dt)
        assert t.count == 1

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_context_manager(self):
        t = Timer()
        with t:
            pass
        assert t.count == 1
        assert not t.running

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.count == 0

    def test_mean(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert t.mean == pytest.approx(t.elapsed / 3)


class TestMultiTimer:
    def test_named_timers_accumulate(self):
        mt = MultiTimer()
        mt.start("a")
        mt.stop("a")
        mt.start("b")
        mt.stop("b")
        summary = mt.summary()
        assert set(summary) == {"a", "b"}

    def test_reset_one(self):
        mt = MultiTimer()
        with mt("x"):
            pass
        mt.reset("x")
        assert mt.elapsed("x") == 0.0


class TestLogger:
    def test_namespacing(self):
        assert get_logger("comm").name == "repro.comm"
        assert get_logger("repro.zero").name == "repro.zero"
        assert get_logger().name == "repro"
