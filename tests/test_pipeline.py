"""Pipeline parallelism: partitioning, schedule parity, bubble timing."""

import numpy as np
import pytest

from repro.autograd import ops
from repro.cluster import uniform_cluster
from repro.config import Config
from repro.context import ParallelContext
from repro.nn import CrossEntropyLoss, Linear, Module, ModuleList, TransformerLayer
from repro.parallel.pipeline import (
    GPipeSchedule,
    OneFOneBSchedule,
    partition_balanced,
    partition_uniform,
)
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor

from conftest import run_spmd

H, NH, B, S, C = 8, 2, 8, 4, 5


class TestPartition:
    def test_uniform_even(self):
        assert partition_uniform(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uniform_remainder_to_early_stages(self):
        assert partition_uniform(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_uniform_rejects_too_many_stages(self):
        with pytest.raises(ValueError):
            partition_uniform(2, 3)

    def test_balanced_uniform_costs(self):
        ranges = partition_balanced([1.0] * 8, 4)
        assert ranges == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_balanced_heavy_layer(self):
        # one huge layer should sit alone
        ranges = partition_balanced([1, 1, 1, 10, 1, 1], 3)
        loads = [sum([1, 1, 1, 10, 1, 1][s:e]) for s, e in ranges]
        assert max(loads) == 10

    def test_balanced_covers_all_layers(self):
        costs = [3, 1, 4, 1, 5, 9, 2, 6]
        ranges = partition_balanced(costs, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(costs)
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_balanced_every_stage_nonempty(self):
        ranges = partition_balanced([10, 1, 1, 1], 4)
        assert all(e > s for s, e in ranges)
        assert len(ranges) == 4

    def test_balanced_optimality_simple(self):
        # [2,2,2,2] into 2 -> max load 4 (optimal)
        ranges = partition_balanced([2, 2, 2, 2], 2)
        loads = [sum([2, 2, 2, 2][s:e]) for s, e in ranges]
        assert max(loads) == 4


def _layer_rng(i):
    return np.random.default_rng((99, i))


class _Tail(Module):
    def __init__(self):
        super().__init__()
        self.head = Linear(H, C, rng=_layer_rng(100))

    def forward(self, x):
        return self.head(x.mean(axis=1))


class _Stack(Module):
    def __init__(self, idxs, with_tail):
        super().__init__()
        mods = [TransformerLayer(H, NH, mlp_ratio=2, rng=_layer_rng(i)) for i in idxs]
        if with_tail:
            mods.append(_Tail())
        self.layers = ModuleList(mods)

    def forward(self, x):
        for l in self.layers:
            x = l(x)
        return x


@pytest.fixture(scope="module")
def serial_ref():
    rng = np.random.default_rng(3)
    X = rng.standard_normal((B, S, H)).astype(np.float32)
    Y = rng.integers(0, C, B)
    model = _Stack(range(4), with_tail=True)
    crit = CrossEntropyLoss()
    loss = crit(model(Tensor(X.copy())), Y)
    loss.backward()
    return {
        "X": X,
        "Y": Y,
        "loss": loss.item(),
        "w1_grad": model.layers[0].mlp.dense_1.weight.grad.numpy().copy(),
        "head_grad": model.layers[4].head.weight.grad.numpy().copy(),
    }


def _run_pipeline(sched_cls, ref, microbatches=4, stages=4):
    crit = CrossEntropyLoss()

    def prog(ctx):
        pc = ParallelContext(
            ctx,
            Config.from_dict(
                dict(parallel=dict(pipeline=stages), num_microbatches=microbatches)
            ),
        )
        s, e = partition_uniform(4, stages)[pc.pp_rank]
        stage = _Stack(range(s, e), with_tail=pc.is_last_pipeline_stage())
        sched = sched_cls(pc, microbatches)
        loss = sched.run(
            stage,
            ref["X"].copy() if pc.is_first_pipeline_stage() else None,
            ref["Y"] if pc.is_last_pipeline_stage() else None,
            crit,
        )
        grads = {}
        if pc.pp_rank == 0:
            grads["w1"] = stage.layers[0].mlp.dense_1.weight.grad.numpy()
        if pc.is_last_pipeline_stage():
            grads["head"] = stage.layers[-1].head.weight.grad.numpy()
        return pc.pp_rank, loss, grads, ctx.clock.time

    return run_spmd(stages, prog)


class TestSchedules:
    @pytest.mark.parametrize("sched_cls", [GPipeSchedule, OneFOneBSchedule])
    def test_loss_and_grad_parity(self, serial_ref, sched_cls):
        res = _run_pipeline(sched_cls, serial_ref)
        last = res[-1]
        assert last[1] == pytest.approx(serial_ref["loss"], abs=1e-5)
        np.testing.assert_allclose(res[0][2]["w1"], serial_ref["w1_grad"], atol=1e-5)
        np.testing.assert_allclose(
            last[2]["head"], serial_ref["head_grad"], atol=1e-5
        )

    @pytest.mark.parametrize("sched_cls", [GPipeSchedule, OneFOneBSchedule])
    def test_microbatch_count_invariance(self, serial_ref, sched_cls):
        """Loss equals the big-batch loss for any microbatch count."""
        for m in (1, 2, 8):
            res = _run_pipeline(sched_cls, serial_ref, microbatches=m)
            assert res[-1][1] == pytest.approx(serial_ref["loss"], abs=1e-5)

    def test_indivisible_microbatches_rejected(self, serial_ref):
        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            _run_pipeline(GPipeSchedule, serial_ref, microbatches=3)

    def test_bubble_grows_with_stages(self, serial_ref):
        """More stages with the same microbatches -> later stages start
        later (the GPipe bubble)."""
        res = _run_pipeline(GPipeSchedule, serial_ref, microbatches=2, stages=4)
        times = [r[3] for r in res]
        # stage 0 finishes its role earlier than the pipeline makespan
        assert max(times) > 0

    def test_more_microbatches_improve_utilization(self):
        """Bubble fraction (p-1)/(m+p-1) shrinks with m: at compute-bound
        scale (spec mode, realistic shapes) m=8 beats m=1 on 4 stages."""
        from repro.comm.payload import SpecArray

        def makespan(m):
            def prog(ctx):
                pc = ParallelContext(
                    ctx,
                    Config.from_dict(
                        dict(parallel=dict(pipeline=4), num_microbatches=m)
                    ),
                )

                class BigStage(Module):
                    def __init__(self):
                        super().__init__()
                        self.lin = Linear(512, 512)

                    def forward(self, x):
                        return ops.gelu(self.lin(x))

                stage = BigStage()
                sched = GPipeSchedule(pc, m)
                out_grads = sched.run(
                    stage,
                    SpecArray((64, 128, 512)) if pc.is_first_pipeline_stage() else None,
                    None,
                    # last stage: sum as a pseudo-loss
                    (lambda out, y: out.sum()) if pc.is_last_pipeline_stage() else None,
                )
                return ctx.clock.time

            return max(run_spmd(4, prog, materialize=False))

        assert makespan(8) < makespan(1)

    def test_1f1b_lower_peak_memory_than_gpipe(self):
        """1F1B holds at most ~p microbatches in flight; GPipe holds m."""

        def peak(sched_cls):
            from repro.comm.payload import SpecArray

            def prog(ctx):
                pc = ParallelContext(
                    ctx,
                    Config.from_dict(
                        dict(parallel=dict(pipeline=2), num_microbatches=8)
                    ),
                )
                stage = _Stack(
                    range(2) if pc.pp_rank == 0 else range(2, 4),
                    with_tail=pc.is_last_pipeline_stage(),
                )
                sched = sched_cls(pc, 8)
                crit = CrossEntropyLoss()
                sched.run(
                    stage,
                    SpecArray((16, S, H)) if pc.pp_rank == 0 else None,
                    SpecArray((16,), "int64") if pc.is_last_pipeline_stage() else None,
                    crit,
                )
                return ctx.device.memory.peak

            return run_spmd(2, prog, materialize=False)[0]

        assert peak(OneFOneBSchedule) < peak(GPipeSchedule)
