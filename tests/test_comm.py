"""Tests for the communicator: collective semantics, spec mode, counters,
cost model, point-to-point."""

import numpy as np
import pytest

from repro.cluster import system_i, system_ii, uniform_cluster
from repro.comm import CommCounters, Communicator, CostModel, SpecArray
from repro.runtime import SpmdRuntime

from conftest import run_spmd


class TestCollectives:
    def test_all_reduce_sum(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            out = comm.all_reduce(np.full(3, float(ctx.rank + 1)))
            return out.tolist()

        for res in run_spmd(4, prog):
            assert res == [10.0, 10.0, 10.0]

    def test_all_reduce_max(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.all_reduce(np.array([float(ctx.rank)]), op="max")[0]

        assert run_spmd(4, prog) == [3.0] * 4

    def test_all_reduce_shape_mismatch_raises(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.zeros(2 + ctx.rank))

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(2, prog)

    def test_all_gather_order(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.all_gather(np.array([ctx.rank * 1.0])).tolist()

        for res in run_spmd(4, prog):
            assert res == [0.0, 1.0, 2.0, 3.0]

    def test_all_gather_axis(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            out = comm.all_gather(np.full((2, 1), float(ctx.rank)), axis=1)
            return out.shape, out[0].tolist()

        shape, row = run_spmd(2, prog)[0]
        assert shape == (2, 2) and row == [0.0, 1.0]

    def test_reduce_scatter(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            out = comm.reduce_scatter(np.arange(4.0))
            return out.tolist()

        res = run_spmd(2, prog)
        assert res[0] == [0.0, 2.0] and res[1] == [4.0, 6.0]

    def test_broadcast(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            x = np.array([7.0]) if ctx.rank == 2 else None
            return comm.broadcast(x, root=2)[0]

        assert run_spmd(4, prog) == [7.0] * 4

    def test_reduce_root_only(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            out = comm.reduce(np.array([1.0]), root=1)
            return None if out is None else out[0]

        assert run_spmd(3, prog) == [None, 3.0, None]

    def test_scatter_gather_roundtrip(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            src = np.arange(8.0) if ctx.rank == 0 else None
            mine = comm.scatter(src, root=0)
            back = comm.gather(mine, root=0)
            return back.tolist() if back is not None else None

        res = run_spmd(4, prog)
        assert res[0] == list(np.arange(8.0))
        assert res[1] is None

    def test_all_to_all(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            chunks = [np.array([float(ctx.rank * 10 + j)]) for j in range(2)]
            out = comm.all_to_all(chunks)
            return [float(c[0]) for c in out]

        res = run_spmd(2, prog)
        assert res[0] == [0.0, 10.0]
        assert res[1] == [1.0, 11.0]

    def test_ring_pass(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            out = comm.ring_pass(np.array([float(ctx.rank)]))
            return out[0]

        assert run_spmd(4, prog) == [3.0, 0.0, 1.0, 2.0]

    def test_ring_pass_negative_shift(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.ring_pass(np.array([float(ctx.rank)]), shift=-1)[0]

        assert run_spmd(4, prog) == [1.0, 2.0, 3.0, 0.0]

    def test_all_gather_object(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.all_gather_object({"r": ctx.rank})

        res = run_spmd(3, prog)
        assert res[0] == [{"r": 0}, {"r": 1}, {"r": 2}]

    def test_barrier_syncs_clocks(self):
        def prog(ctx):
            ctx.clock.advance(float(ctx.rank))
            Communicator.world(ctx).barrier()
            return ctx.clock.time

        res = run_spmd(4, prog)
        assert all(t >= 3.0 for t in res)

    def test_split_by_color(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            sub = comm.split(color=ctx.rank % 2)
            return sorted(sub.group.ranks), sub.rank

        res = run_spmd(4, prog)
        assert res[0][0] == [0, 2]
        assert res[1][0] == [1, 3]
        assert res[3][1] == 1

    def test_subgroup(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank < 2:
                sub = comm.subgroup([0, 1])
                return sub.all_reduce(np.array([1.0]))[0]
            return None

        res = run_spmd(2, prog)
        assert res == [2.0, 2.0]

    def test_determinism_bitwise(self):
        """Reduction order is rank order -> bitwise identical across runs."""

        def prog(ctx):
            comm = Communicator.world(ctx)
            rng = np.random.default_rng(ctx.rank)
            x = rng.standard_normal(64).astype(np.float32)
            return comm.all_reduce(x).tobytes()

        a = run_spmd(4, prog)
        b = run_spmd(4, prog)
        assert a == b


class TestP2P:
    def test_send_recv(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.send(np.array([3.14]), dst=1, tag="x")
                return None
            return comm.recv(src=0, tag="x")[0]

        assert run_spmd(2, prog)[1] == pytest.approx(3.14)

    def test_tags_demultiplex(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.send(np.array([1.0]), dst=1, tag="a")
                comm.send(np.array([2.0]), dst=1, tag="b")
                return None
            b = comm.recv(src=0, tag="b")[0]
            a = comm.recv(src=0, tag="a")[0]
            return (a, b)

        assert run_spmd(2, prog)[1] == (1.0, 2.0)

    def test_fifo_per_tag(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                for i in range(3):
                    comm.send(np.array([float(i)]), dst=1)
                return None
            return [comm.recv(src=0)[0] for _ in range(3)]

        assert run_spmd(2, prog)[1] == [0.0, 1.0, 2.0]

    def test_recv_time_after_send_time(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                ctx.clock.advance(1.0)
                comm.send(np.zeros(1024), dst=1)
                return ctx.clock.time
            x = comm.recv(src=0)
            return ctx.clock.time

        t_send, t_recv = run_spmd(2, prog)
        assert t_recv >= 1.0
        assert t_recv == pytest.approx(t_send, rel=1e-6)

    def test_sendrecv_exchange(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            other = 1 - ctx.rank
            out = comm.sendrecv(np.array([float(ctx.rank)]), dst=other, src=other)
            return out[0]

        assert run_spmd(2, prog) == [1.0, 0.0]


class TestSpecMode:
    def test_all_reduce_spec(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            out = comm.all_reduce(SpecArray((4, 4), "float16"))
            return isinstance(out, SpecArray), out.shape, ctx.clock.time

        for is_spec, shape, t in run_spmd(4, prog, materialize=False):
            assert is_spec and shape == (4, 4) and t > 0

    def test_all_gather_spec_shape(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.all_gather(SpecArray((2, 3)), axis=0).shape

        assert run_spmd(4, prog, materialize=False) == [(8, 3)] * 4

    def test_scatter_spec(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            return comm.scatter(SpecArray((8,)), root=0).shape

        assert run_spmd(4, prog, materialize=False) == [(2,)] * 4

    def test_spec_and_real_cost_identical(self):
        def prog_real(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.zeros((64, 64), dtype=np.float32))
            return ctx.clock.time

        def prog_spec(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(SpecArray((64, 64), "float32"))
            return ctx.clock.time

        assert run_spmd(4, prog_real) == run_spmd(4, prog_spec, materialize=False)


class TestCountersAndCost:
    def test_allreduce_wire_volume(self):
        """Ring allreduce totals 2(p-1) * payload (Table 1 convention)."""
        rt = SpmdRuntime(uniform_cluster(4))

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.zeros(100, dtype=np.float32))

        rt.run(prog)
        c = rt.world_group.counters
        assert c.elements_total == 2 * 3 * 100
        assert c.bytes_total == 2 * 3 * 400

    def test_allgather_wire_volume(self):
        rt = SpmdRuntime(uniform_cluster(4))

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_gather(np.zeros(10, dtype=np.float64))

        rt.run(prog)
        assert rt.world_group.counters.elements_total == 4 * 3 * 10

    def test_broadcast_wire_volume(self):
        rt = SpmdRuntime(uniform_cluster(4))

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.broadcast(np.zeros(10) if ctx.rank == 0 else None)

        rt.run(prog)
        assert rt.world_group.counters.elements_total == 3 * 10

    def test_counters_reset_and_merge(self):
        c1 = CommCounters()
        c1.record("all_reduce", 100, 25)
        c2 = CommCounters()
        c2.record("all_reduce", 50, 10)
        c2.record("p2p", 4, 1)
        merged = c1.merged_with(c2)
        assert merged.bytes_total == 154
        assert merged.by_op_calls["all_reduce"] == 2
        c1.reset()
        assert c1.bytes_total == 0

    def test_cost_singleton_group_free(self):
        cm = CostModel(uniform_cluster(2))
        assert cm.allreduce([0], 1000).seconds == 0.0

    def test_cost_topology_sensitivity(self):
        """The same allreduce is slower on System II's full ring than on
        System I (the Fig 11 mechanism)."""
        nbytes = 64 * 1024 * 1024
        t1 = CostModel(system_i()).allreduce(list(range(8)), nbytes).seconds
        t2 = CostModel(system_ii()).allreduce(list(range(8)), nbytes).seconds
        assert t2 > 3 * t1

    def test_cost_pair_groups_fast_on_system_ii(self):
        nbytes = 64 * 1024 * 1024
        cm = CostModel(system_ii())
        pair = cm.allreduce([0, 1], nbytes).seconds
        distant_pair = cm.allreduce([0, 2], nbytes).seconds
        assert distant_pair > 3 * pair

    def test_host_transfer_cost(self):
        cm = CostModel(uniform_cluster(2))
        c = cm.host_transfer(0, 16 * 1024**3)
        assert c.seconds == pytest.approx(1.0, rel=0.01)  # 16 GB over 16 GB/s
