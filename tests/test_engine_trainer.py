"""Engine (Listing 1 API) and Trainer with hooks."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.config import Config
from repro.data import DataLoader, synthetic_image_classification
from repro.engine import initialize, launch
from repro.models import ViTConfig, build_vit
from repro.nn import CrossEntropyLoss, Linear
from repro.optim import Adam, AdamW, SGD
from repro.tensor import Tensor
from repro.trainer import (
    Accuracy,
    AverageMeter,
    LossLoggingHook,
    MetricHook,
    ThroughputHook,
    Trainer,
)

from conftest import run_spmd


class TestEngineAPI:
    def test_listing1_loop(self):
        """The exact usage pattern from the paper's Listing 1."""
        rng = np.random.default_rng(0)
        X = rng.standard_normal((16, 8)).astype(np.float32)
        Y = rng.integers(0, 3, 16)

        def prog(ctx, pc):
            model = Linear(8, 3, rng=np.random.default_rng(1))
            engine = initialize(
                model, Adam(model.parameters(), lr=1e-2), CrossEntropyLoss(), pc=pc
            )
            losses = []
            for _ in range(3):
                engine.zero_grad()
                output = engine(Tensor(X.copy()))
                loss = engine.criterion(output, Y)
                engine.backward(loss)
                engine.step()
                losses.append(loss.item())
            return losses

        losses = launch({}, uniform_cluster(1), prog)[0]
        assert losses[-1] < losses[0]  # it learns

    def test_fp16_overflow_skips_step(self):
        def prog(ctx, pc):
            model = Linear(4, 2, rng=np.random.default_rng(0))
            engine = initialize(
                model, SGD(model.parameters(), lr=0.1), CrossEntropyLoss(),
                pc=pc, config=Config.from_dict(dict(fp16=dict(enabled=True))),
            )
            w_before = model.weight.numpy().copy()
            # force an overflow by injecting inf grads
            model.weight.grad = Tensor(np.full(model.weight.shape, np.inf, dtype=np.float32))
            model.bias.grad = Tensor(np.zeros(model.bias.shape, dtype=np.float32))
            ok = engine.step()
            return ok, engine.steps_skipped, np.allclose(model.weight.numpy(), w_before)

        ok, skipped, unchanged = launch({}, uniform_cluster(1), prog)[0]
        assert not ok and skipped == 1 and unchanged

    def test_fp16_casts_model(self):
        def prog(ctx, pc):
            model = Linear(4, 2)
            initialize(
                model, SGD(model.parameters(), lr=0.1), None,
                pc=pc, config=Config.from_dict(dict(fp16=dict(enabled=True))),
            )
            return model.weight.dtype == np.float16

        assert launch({}, uniform_cluster(1), prog)[0]

    def test_gradient_clipping_applied(self):
        def prog(ctx, pc):
            model = Linear(4, 2, rng=np.random.default_rng(0))
            engine = initialize(
                model, SGD(model.parameters(), lr=0.0), None, pc=pc,
                config=Config.from_dict(dict(gradient_clipping=1.0)),
            )
            model.weight.grad = Tensor(np.full((4, 2), 10.0, dtype=np.float32))
            model.bias.grad = Tensor(np.zeros(2, dtype=np.float32))
            engine.step()
            return float(np.linalg.norm(model.weight.grad.numpy()))

        assert launch({}, uniform_cluster(1), prog)[0] == pytest.approx(1.0, rel=1e-3)

    def test_pipeline_engine_auto_schedule(self):
        def prog(ctx, pc):
            engine = initialize(
                Linear(4, 4), SGD([p for p in Linear(4, 4).parameters()], lr=0.1),
                CrossEntropyLoss(), pc=pc,
            )
            return engine.schedule is not None

        cfg = dict(parallel=dict(pipeline=2), num_microbatches=2)
        assert all(launch(cfg, uniform_cluster(2), prog))

    def test_ddp_grad_sync_in_step(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((8, 4)).astype(np.float32)
        Y = rng.integers(0, 2, 8)

        # serial full-batch single step
        model_s = Linear(4, 2, rng=np.random.default_rng(1))
        crit = CrossEntropyLoss()
        loss = crit(model_s(Tensor(X.copy())), Y)
        loss.backward()
        opt_s = SGD(model_s.parameters(), lr=0.1)
        opt_s.step()
        ref_w = model_s.weight.numpy().copy()

        def prog(ctx, pc):
            from repro.parallel.data import shard_batch

            model = Linear(4, 2, rng=np.random.default_rng(1))
            engine = initialize(model, SGD(model.parameters(), lr=0.1), crit, pc=pc)
            xl, yl = shard_batch(X, pc), shard_batch(Y, pc)
            engine.zero_grad()
            out = engine(Tensor(xl.copy()))
            engine.backward(engine.criterion(out, yl))
            engine.step()
            return model.weight.numpy()

        for w in launch({}, uniform_cluster(4), prog):
            np.testing.assert_allclose(w, ref_w, atol=1e-5)


class TestTrainer:
    def _fit(self, ctx, pc, epochs=2):
        cfg = ViTConfig(
            image_size=8, patch_size=4, in_channels=2, hidden_size=16,
            n_layers=1, n_heads=2, n_classes=3, mlp_ratio=1, seed=5,
        )
        X, Y = synthetic_image_classification(
            48, image_size=8, channels=2, n_classes=3, noise=0.3, seed=1
        )
        bundle = build_vit(cfg, pc, mode="serial")
        engine = initialize(
            bundle.model, AdamW(bundle.model.parameters(), lr=3e-3, weight_decay=0.0),
            CrossEntropyLoss(), pc=pc,
        )
        hooks = [
            LossLoggingHook(every=1),
            MetricHook(),
            ThroughputHook(samples_per_step=16),
        ]
        trainer = Trainer(engine, hooks=hooks)
        loader = DataLoader(X, Y, batch_size=16, seed=0)
        history = trainer.fit(loader, epochs=epochs)
        return history, trainer

    def test_fit_improves_accuracy(self):
        def prog(ctx, pc):
            history, _ = self._fit(ctx, pc, epochs=4)
            return history

        history = launch({}, uniform_cluster(1), prog)[0]
        acc = history["accuracy"]
        assert acc[-1] > acc[0]
        assert len(history["throughput"]) == 4
        assert all(t > 0 for t in history["throughput"])

    def test_loss_history_recorded(self):
        def prog(ctx, pc):
            history, trainer = self._fit(ctx, pc, epochs=1)
            return list(history), trainer.step

        keys, steps = launch({}, uniform_cluster(1), prog)[0]
        assert "loss" in keys and steps == 3  # 48/16 per epoch

    def test_evaluate(self):
        def prog(ctx, pc):
            _, trainer = self._fit(ctx, pc, epochs=2)
            X, Y = synthetic_image_classification(
                32, image_size=8, channels=2, n_classes=3, noise=0.3, seed=2
            )
            metric = Accuracy()
            trainer.evaluate(
                DataLoader(X, Y, batch_size=16, shuffle=False),
                lambda out, y: metric.update(out, y),
            )
            return metric.value

        acc = launch({}, uniform_cluster(1), prog)[0]
        assert 0.0 <= acc <= 1.0


class TestMetrics:
    def test_average_meter(self):
        m = AverageMeter()
        m.update(2.0, n=2)
        m.update(5.0)
        assert m.avg == pytest.approx(3.0)
        m.reset()
        assert m.avg == 0.0

    def test_accuracy_metric(self):
        a = Accuracy()
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        a.update(logits, np.array([0, 1, 1]))
        assert a.value == pytest.approx(2 / 3)
