"""Automatic parallelization: layout-conversion search + strategy advisor."""

import numpy as np
import pytest

from repro.autopar import (
    Layout,
    ParallelPlan,
    convert_payload,
    plan_conversion,
    suggest_plans,
)
from repro.autopar.advisor import Workload, estimate_plan
from repro.cluster import system_i, system_ii, system_iv, uniform_cluster
from repro.comm import Communicator

from conftest import run_spmd


class TestLayout:
    def test_local_shape(self):
        mesh = {"x": 2, "y": 4}
        l = Layout.make(2, {0: ["x"], 1: ["y"]})
        assert l.local_shape((8, 8), mesh) == (4, 2)

    def test_multi_axis_dim(self):
        mesh = {"x": 2, "y": 2}
        l = Layout.make(2, {0: ["x", "y"]})
        assert l.local_shape((8, 4), mesh) == (2, 4)
        assert l.shard_factor(mesh) == 4

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            Layout.make(2, {0: ["x"], 1: ["x"]})

    def test_indivisible_rejected(self):
        l = Layout.make(1, {0: ["x"]})
        with pytest.raises(ValueError):
            l.local_shape((7,), {"x": 2})

    def test_remove_requires_innermost(self):
        l = Layout.make(1, {0: ["x", "y"]})
        with pytest.raises(ValueError):
            l.with_removed(0, "x")
        l2 = l.with_removed(0, "y")
        assert l2.placement[0] == ("x",)


class TestConversionPlanner:
    MESH = {"x": 2, "y": 2}

    def test_identity_is_free(self):
        l = Layout.make(2, {0: ["x"]})
        plan = plan_conversion(l, l, (8, 8), self.MESH)
        assert plan.steps == [] and plan.cost == 0.0

    def test_transpose_uses_single_all_to_all(self):
        """Moving an axis between dims should be one all-to-all, not
        gather + slice (the advantage over a fixed conversion table)."""
        src = Layout.make(2, {0: ["x"]})
        dst = Layout.make(2, {1: ["x"]})
        plan = plan_conversion(src, dst, (8, 8), self.MESH)
        assert len(plan.steps) == 1
        assert plan.steps[0].op == "all_to_all"

    def test_gather_only(self):
        src = Layout.make(2, {0: ["x"]})
        dst = Layout.make(2, {})
        plan = plan_conversion(src, dst, (8, 8), self.MESH)
        assert [s.op for s in plan.steps] == ["all_gather"]

    def test_slice_is_free(self):
        src = Layout.make(2, {})
        dst = Layout.make(2, {0: ["x"], 1: ["y"]})
        plan = plan_conversion(src, dst, (8, 8), self.MESH)
        assert plan.cost == 0.0
        assert all(s.op == "slice" for s in plan.steps)

    def test_deep_conversion_found(self):
        src = Layout.make(2, {0: ["x", "y"]})
        dst = Layout.make(2, {0: ["y"], 1: ["x"]})
        plan = plan_conversion(src, dst, (8, 8), self.MESH)
        assert 1 <= len(plan.steps) <= 4

    def test_cost_monotone_in_size(self):
        src = Layout.make(2, {0: ["x"]})
        dst = Layout.make(2, {})
        small = plan_conversion(src, dst, (8, 8), self.MESH)
        big = plan_conversion(src, dst, (64, 64), self.MESH)
        assert big.cost > small.cost

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plan_conversion(
                Layout.make(1, {}), Layout.make(2, {}), (4, 4), self.MESH
            )


class TestConversionExecution:
    """Plans must be *runnable*: executing them SPMD reproduces the direct
    resharding of the global tensor."""

    @pytest.mark.parametrize(
        "src_assign,dst_assign",
        [
            ({0: ["x"]}, {1: ["x"]}),
            ({0: ["x"]}, {}),
            ({}, {0: ["x"]}),
            ({0: ["x"], 1: ["y"]}, {0: ["y"], 1: ["x"]}),
            ({0: ["x", "y"]}, {1: ["y", "x"]}),
        ],
    )
    def test_roundtrip_matches_direct_reshard(self, src_assign, dst_assign):
        mesh = {"x": 2, "y": 2}
        global_t = np.arange(8 * 8, dtype=np.float32).reshape(8, 8)
        src = Layout.make(2, src_assign)
        dst = Layout.make(2, dst_assign)
        plan = plan_conversion(src, dst, (8, 8), mesh)

        def slice_for(layout, coord):
            out = global_t
            for d, axes in enumerate(layout.placement):
                for a in axes:
                    out = np.split(out, mesh[a], axis=d)[coord[a]]
            return out

        def prog(ctx):
            comm = Communicator.world(ctx)
            coord = {"x": ctx.rank // 2, "y": ctx.rank % 2}
            comms = {
                "x": comm.split(color=coord["y"], key=coord["x"]),
                "y": comm.split(color=coord["x"], key=coord["y"]),
            }
            local = slice_for(src, coord).copy()
            out = convert_payload(local, plan, comms, coord)
            return coord, out

        for coord, out in run_spmd(4, prog):
            np.testing.assert_array_equal(out, slice_for(dst, coord))


class TestAdvisor:
    WORK = Workload(n_layers=16, hidden=3072, n_heads=48, seq_len=196)

    def test_plans_fit_memory(self):
        plans = suggest_plans(system_i(), self.WORK, global_batch=256, world_size=8)
        assert plans
        for est in plans:
            assert est.fits
            assert est.memory_bytes <= system_i().gpus[0].memory_capacity

    def test_topology_constraints_respected(self):
        plans = suggest_plans(system_i(), self.WORK, global_batch=256, world_size=8)
        for est in plans:
            p = est.plan
            assert p.data * p.tensor * p.pipeline == 8
            if p.mode == "2d":
                import math

                q = math.isqrt(p.tensor)
                assert q * q == p.tensor

    def test_fig11_mode_preference(self):
        """Forced to tensor=4, the advisor prefers 1D on System I and
        2D on System II — the Fig 11 conclusion."""
        def mode_times(cluster):
            out = {}
            for mode in ("1d", "2d"):
                est = estimate_plan(
                    cluster, self.WORK, ParallelPlan(1, 4, mode, 1), global_batch=256
                )
                out[mode] = est.step_seconds
            return out

        t1 = mode_times(system_i())
        t2 = mode_times(system_ii())
        assert t1["1d"] < t1["2d"]
        assert t2["2d"] < t2["1d"]

    def test_oom_plans_rejected(self):
        """A model far beyond a single tiny GPU must force model parallelism."""
        big = Workload(n_layers=32, hidden=4096, n_heads=64, seq_len=512)
        cluster = uniform_cluster(8, memory_gb=16)
        plans = suggest_plans(cluster, big, global_batch=64, world_size=8)
        assert plans
        assert all(e.plan.tensor * e.plan.pipeline > 1 for e in plans)

    def test_pipeline_bubble_accounted(self):
        est1 = estimate_plan(
            system_i(), self.WORK, ParallelPlan(1, 1, "1d", 1), global_batch=256
        )
        est4 = estimate_plan(
            system_i(), self.WORK, ParallelPlan(1, 1, "1d", 4), global_batch=256
        )
        assert est4.bubble_fraction > 0
        assert est1.bubble_fraction == 0

    def test_invalid_batch_plans_skipped(self):
        plans = suggest_plans(system_i(), self.WORK, global_batch=7, world_size=4)
        for est in plans:
            assert est.plan.data == 1  # 7 not divisible by larger dp
