"""Chaos suite: deterministic fault injection against the SPMD runtime.

Every test here is seeded through ``FaultPlan(seed=...)`` — rerun any
failure with ``--fault-seed N`` to replay the exact same fault schedule.
Transient faults must heal to bitwise-identical results; permanent faults
must surface as typed errors on every rank; no test may leak rank threads.
"""

import math
import threading

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.comm import Communicator
from repro.faults import (
    CollectiveGlitch,
    FaultInjector,
    FaultPlan,
    MessageFault,
    RankCrash,
)
from repro.runtime import SpmdRuntime
from repro.runtime.errors import (
    CollectiveTimeout,
    RankFailure,
    RemoteRankError,
    SpmdAborted,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def no_leaked_rank_threads():
    """Every test must leave zero live spmd-rank-* threads behind."""
    yield
    for t in threading.enumerate():
        if t.name.startswith("spmd-rank-"):
            t.join(timeout=10.0)
    leaked = [t.name for t in threading.enumerate()
              if t.name.startswith("spmd-rank-") and t.is_alive()]
    assert not leaked, f"leaked rank threads: {leaked}"


def _collective_prog(kind):
    def prog(ctx):
        comm = Communicator.world(ctx)
        n = ctx.world_size
        x = np.arange(4 * n, dtype=np.float32) + 10.0 * ctx.rank
        if kind == "all_reduce":
            out = comm.all_reduce(x)
        elif kind == "all_gather":
            out = comm.all_gather(x)
        elif kind == "reduce_scatter":
            out = comm.reduce_scatter(x)
        elif kind == "broadcast":
            out = comm.broadcast(x if ctx.rank == 0 else None, root=0)
        else:  # pragma: no cover - guard against typos in parametrize
            raise ValueError(kind)
        c = comm.group.counters
        return (np.asarray(out).copy(), ctx.clock.time,
                c.retries_total, c.retry_bytes_total, c.calls_total)
    return prog


class TestTransientCollectiveGlitch:
    """A glitched collective retries, pays for the retransmissions in
    simulated time and wire bytes, and still delivers bitwise-identical
    payloads."""

    @pytest.mark.parametrize("world", [2, 4])
    @pytest.mark.parametrize(
        "kind", ["all_reduce", "all_gather", "reduce_scatter", "broadcast"]
    )
    def test_bitwise_recovery(self, world, kind, fault_seed):
        prog = _collective_prog(kind)
        clean = SpmdRuntime(uniform_cluster(world)).run(prog)

        plan = FaultPlan(seed=fault_seed).glitch(op=kind, attempts=2)
        faulty = SpmdRuntime(uniform_cluster(world), fault_plan=plan).run(prog)

        for (v0, t0, r0, rb0, c0), (v1, t1, r1, rb1, c1) in zip(clean, faulty):
            assert np.array_equal(v0, v1)  # payloads untouched by the fault
            assert r0 == 0 and r1 == 2  # exactly the planned retries
            assert rb1 > 0  # retransmitted bytes were counted
            assert c1 == c0  # the call still succeeds exactly once
            assert t1 > t0  # retries cost simulated time

    def test_glitch_any_op_matches_first_collective(self, fault_seed):
        plan = FaultPlan(seed=fault_seed).glitch(attempts=1)  # op=None: any

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.barrier()
            return comm.group.counters.retries_total

        retries = SpmdRuntime(uniform_cluster(2), fault_plan=plan).run(prog)
        assert all(r == 1 for r in retries)


class TestP2PFaults:
    def _ring(self, ctx):
        comm = Communicator.world(ctx)
        x = np.full(8, float(ctx.rank), dtype=np.float32)
        out = comm.sendrecv(
            x, dst=(ctx.rank + 1) % ctx.world_size,
            src=(ctx.rank - 1) % ctx.world_size,
        )
        return np.asarray(out).copy(), comm.group.counters.retries_total

    @pytest.mark.parametrize("corrupt", [False, True],
                             ids=["drop", "corrupt"])
    def test_transient_message_fault_heals(self, corrupt, fault_seed):
        plan = FaultPlan(seed=fault_seed)
        if corrupt:
            plan.corrupt(src=0, dst=1, count=2)
        else:
            plan.drop(src=0, dst=1, count=2)
        rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan)
        res = rt.run(self._ring)
        # payload delivered intact despite the faulted link
        for rank, (out, _) in enumerate(res):
            assert np.all(out == float((rank - 1) % 4))
        assert all(r[1] == 2 for r in res)

    def test_probabilistic_drop_is_seed_deterministic(self):
        plan = lambda s: FaultPlan(seed=s).drop(src=0, dst=1, count=None, p=0.5)

        def retries(s):
            rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan(s))
            try:
                res = rt.run(self._ring)
                return tuple(r[1] for r in res)
            except RemoteRankError:
                return "dead"

        assert retries(3) == retries(3)  # same seed, same outcome

    def test_link_down_raises_typed_timeout(self, fault_seed):
        plan = FaultPlan(seed=fault_seed).link_down(src=0, dst=1)
        rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan,
                         deadlock_timeout=2.0)
        with pytest.raises(RemoteRankError) as ei:
            rt.run(self._ring)
        cause = ei.value.__cause__
        assert isinstance(cause, CollectiveTimeout)
        assert cause.op == "p2p"
        assert cause.ranks == (0, 1)
        assert cause.attempts == rt.retry_policy.max_retries + 1


class TestBlackoutAndCrash:
    def test_blackout_times_out_on_every_rank(self, fault_seed):
        plan = FaultPlan(seed=fault_seed).blackout(op="all_reduce")

        def prog(ctx):
            comm = Communicator.world(ctx)
            try:
                comm.all_reduce(np.ones(4, dtype=np.float32))
            except CollectiveTimeout as e:
                return ("timeout", e.op, sorted(e.ranks), e.attempts)
            return "ok"

        rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan)
        res = rt.run(prog)
        expect = ("timeout", "all_reduce", [0, 1, 2, 3],
                  rt.retry_policy.max_retries + 1)
        assert res == [expect] * 4

    def test_crash_at_time_aborts_with_rank_failure(self, fault_seed):
        plan = FaultPlan(seed=fault_seed).crash(rank=2, at_time=1e-4)

        def prog(ctx):
            comm = Communicator.world(ctx)
            for _ in range(50):
                comm.all_reduce(np.ones(64, dtype=np.float32))
            return "done"

        rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan,
                         deadlock_timeout=2.0)
        with pytest.raises(RemoteRankError) as ei:
            rt.run(prog)
        cause = ei.value.__cause__
        assert isinstance(cause, RankFailure)
        assert cause.rank == 2
        assert cause.sim_time is not None and cause.sim_time >= 1e-4

    def test_survivors_see_spmd_aborted(self, fault_seed):
        """Non-crashed ranks observe the abort, not a hang."""
        observed = {}

        def prog(ctx):
            comm = Communicator.world(ctx)
            try:
                for _ in range(50):
                    comm.all_reduce(np.ones(64, dtype=np.float32))
            except SpmdAborted:
                observed[ctx.rank] = "aborted"
                raise
            observed[ctx.rank] = "done"
            return None

        plan = FaultPlan(seed=fault_seed).crash(rank=0, at_time=1e-4)
        rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan,
                         deadlock_timeout=2.0)
        with pytest.raises(RemoteRankError):
            rt.run(prog)
        assert any(v == "aborted" for v in observed.values())


class TestTimingFaults:
    def _timed(self, ctx):
        # local compute, then a sync point: stragglers show up in the
        # synchronized collective exit time
        ctx.clock.advance(1e-3, "compute")
        comm = Communicator.world(ctx)
        comm.all_reduce(np.ones(1024, dtype=np.float32))
        return ctx.clock.time

    def test_straggler_slows_whole_group(self, fault_seed):
        base = max(SpmdRuntime(uniform_cluster(4)).run(self._timed))
        plan = FaultPlan(seed=fault_seed).straggler(rank=1, factor=4.0)
        slow = max(SpmdRuntime(uniform_cluster(4), fault_plan=plan).run(self._timed))
        # rank 1's 1ms of compute takes 4ms; the collective drags everyone
        assert slow == pytest.approx(base + 3e-3, rel=1e-3)

    def test_straggler_window_expires(self, fault_seed):
        plan = (FaultPlan(seed=fault_seed)
                .straggler(rank=0, factor=10.0, start=0.0, end=5e-4))

        def prog(ctx):
            ctx.clock.advance(1e-3, "compute")
            return ctx.clock.time

        res = SpmdRuntime(uniform_cluster(2), fault_plan=plan).run(prog)
        # the 10x window covers sim time [0, 0.5ms): 0.05ms of work fits in
        # it, the remaining 0.95ms runs at full speed; rank 1 is untouched
        assert res[0] == pytest.approx(5e-4 + 9.5e-4, rel=1e-3)
        assert res[1] == pytest.approx(1e-3, rel=1e-6)

    def test_degraded_link_slows_collective(self, fault_seed):
        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones(1 << 16, dtype=np.float32))
            return ctx.clock.time

        base = max(SpmdRuntime(uniform_cluster(4)).run(prog))
        # degrade every link touching rank 0: the topology-aware ring
        # ordering routes around a single bad edge on a fully-connected
        # fabric, but rank 0 must still be entered and left once
        plan = FaultPlan(seed=fault_seed)
        for dst in (1, 2, 3):
            plan.degrade_link(src=0, dst=dst, factor=0.1)
        slow = max(SpmdRuntime(uniform_cluster(4), fault_plan=plan).run(prog))
        assert slow > base

    def test_degrade_is_idempotent_across_runs(self, fault_seed):
        """Re-running on the same runtime re-applies the same degradation
        from the pristine bandwidth — no compounding."""
        plan = FaultPlan(seed=fault_seed).degrade_link(src=0, dst=1, factor=0.5)
        rt = SpmdRuntime(uniform_cluster(2), fault_plan=plan)

        def prog(ctx):
            comm = Communicator.world(ctx)
            comm.all_reduce(np.ones(1 << 16, dtype=np.float32))
            return ctx.clock.time

        t1 = max(rt.run(prog))
        t2 = max(rt.run(prog))
        assert t1 == t2


class TestDeterministicReplay:
    def test_same_seed_same_everything(self):
        """Two fresh runtimes with the same plan: identical retry counters,
        retransmitted bytes and per-rank clock readings."""
        def prog(ctx):
            comm = Communicator.world(ctx)
            for _ in range(3):
                comm.all_reduce(np.ones(256, dtype=np.float32))
            x = np.ones(8, dtype=np.float32)
            comm.sendrecv(x, dst=(ctx.rank + 1) % ctx.world_size,
                          src=(ctx.rank - 1) % ctx.world_size)
            return ctx.clock.time

        def plan():
            return (FaultPlan(seed=1234)
                    .glitch(op="all_reduce", attempts=2, max_glitches=2)
                    .drop(src=0, dst=1, count=1, p=0.8)
                    .straggler(rank=1, factor=2.0))

        def observe():
            # counters are shared per group; read them after the run so
            # every rank thread has finished recording
            rt = SpmdRuntime(uniform_cluster(4), fault_plan=plan())
            times = rt.run(prog)
            c = rt.world_group.counters
            return (times, c.retries_total, c.retry_bytes_total,
                    c.bytes_total, dict(c.by_op_retries))

        assert observe() == observe()

    def test_different_seed_differs(self):
        """p<1 decisions flip with the seed (checked on the coin directly
        so the test can't be starved by an unlucky pair of seeds)."""
        coins = {s: FaultPlan(seed=s).coin(0, 1, 2) for s in range(8)}
        assert len(set(coins.values())) > 1


class TestPlanValidation:
    def test_crash_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            RankCrash(0)
        with pytest.raises(ValueError):
            RankCrash(0, at_step=1, at_time=1.0)

    def test_out_of_range_rank_rejected_at_install(self):
        plan = FaultPlan().crash(rank=9, at_step=1)
        rt = SpmdRuntime(uniform_cluster(2), fault_plan=plan)
        with pytest.raises(ValueError, match="rank"):
            rt.run(lambda ctx: None)

    def test_injector_without_events_is_inert(self):
        inj = FaultInjector(FaultPlan())
        assert inj.p2p_verdict(0, 1) == "deliver"
        assert inj.collective_verdict("all_reduce", (0, 1), 0) == (0, False)


class TestDeadlockTimeoutKnob:
    def test_constructor_timeout_used(self):
        rt = SpmdRuntime(uniform_cluster(2), deadlock_timeout=0.5)
        assert rt.deadlock_timeout == 0.5

        def prog(ctx):
            if ctx.rank == 0:
                Communicator.world(ctx).all_reduce(np.ones(4, dtype=np.float32))
            return "ok"  # rank 1 never shows up -> rank 0 must time out

        with pytest.raises(RemoteRankError) as ei:
            rt.run(prog)
        cause = ei.value.__cause__
        assert isinstance(cause, CollectiveTimeout)
        assert cause.timeout == 0.5

    def test_default_unchanged(self):
        from repro.runtime.spmd import _DEADLOCK_TIMEOUT

        rt = SpmdRuntime(uniform_cluster(2))
        assert rt.deadlock_timeout == _DEADLOCK_TIMEOUT

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            SpmdRuntime(uniform_cluster(2), deadlock_timeout=0.0)
