"""Tests for the backward engine: accumulation, graph mechanics, memory
behaviour, checkpointing, spec mode."""

import gc

import numpy as np
import pytest

from repro.autograd import checkpoint, no_grad, ops
from repro.cluster.device import Device, DeviceKind
from repro.comm.payload import SpecArray
from repro.tensor import Tensor, set_default_device
from repro.utils.units import MB


class TestBackwardMechanics:
    def test_scalar_seed_required(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = ops.mul(x, 2.0)
        with pytest.raises(RuntimeError):
            y.backward()

    def test_explicit_grad_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = ops.mul(x, 3.0)
        y.backward(Tensor(np.array([1.0, 2.0, 3.0])))
        np.testing.assert_allclose(x.grad.numpy(), [3.0, 6.0, 9.0])

    def test_backward_on_leaf_accumulates_seed(self):
        x = Tensor(np.ones(2), requires_grad=True)
        x.backward(Tensor(np.array([5.0, 6.0])))
        np.testing.assert_allclose(x.grad.numpy(), [5.0, 6.0])

    def test_backward_on_detached_raises(self):
        x = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_multi_use_accumulation(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = ops.add(ops.mul(x, 3.0), ops.mul(x, 4.0))  # 7x
        y.backward()
        assert x.grad.numpy()[0] == 7.0

    def test_repeated_backward_accumulates_into_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        for _ in range(2):
            ops.mul(x, 2.0).sum().backward()
        np.testing.assert_allclose(x.grad.numpy(), [4.0, 4.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        ops.mul(x, 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = ops.mul(x, 2.0)
        b = ops.mul(x, 5.0)
        y = ops.mul(a, b)  # 10 x^2 -> dy/dx = 20x = 60
        y.backward()
        assert x.grad.numpy()[0] == pytest.approx(60.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        h = x
        for _ in range(3000):
            h = ops.add(h, 1.0)
        h.sum().backward()
        np.testing.assert_allclose(x.grad.numpy(), [1.0, 1.0])

    def test_stop_at_non_grad_inputs(self):
        x = Tensor(np.ones(2), requires_grad=True)
        c = Tensor(np.ones(2))  # constant
        y = ops.mul(x, c).sum()
        y.backward()
        assert c.grad is None
        assert x.grad is not None


class TestNoGrad:
    def test_no_graph_built(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = ops.mul(x, 2.0)
        assert y.grad_fn is None
        assert not y.requires_grad

    def test_nested_restores(self):
        from repro.autograd.function import grad_enabled

        with no_grad():
            with no_grad():
                assert not grad_enabled()
            assert not grad_enabled()
        assert grad_enabled()


class TestMemoryBehaviour:
    def setup_method(self):
        self.dev = Device("mem", DeviceKind.GPU, memory_capacity=512 * MB)
        set_default_device(self.dev)

    def teardown_method(self):
        set_default_device(None)

    def test_activations_freed_after_backward(self):
        x = Tensor(SpecArray((256, 1024), "float32"), requires_grad=True)
        ws = [
            Tensor(SpecArray((1024, 1024), "float32"), requires_grad=True, tag="param")
            for _ in range(4)
        ]
        h = x
        for w in ws:
            h = ops.gelu(ops.matmul(h, w))
        after_fwd = self.dev.memory.allocated
        loss = h.sum()
        loss.backward()
        del h, loss
        gc.collect()
        residual = self.dev.memory.allocated
        # params + grads + x + x.grad remain; forward activations are gone
        expected = sum(w.nbytes for w in ws) * 2 + x.nbytes * 2
        assert residual <= expected + 4096
        # forward really did hold activations: 2 per layer (matmul + gelu)
        held = after_fwd - sum(w.nbytes for w in ws) - x.nbytes
        assert held >= 8 * x.nbytes

    def test_peak_shape_rises_through_forward(self):
        x = Tensor(SpecArray((64, 64)), requires_grad=True)
        w = Tensor(SpecArray((64, 64)), requires_grad=True)
        base = self.dev.memory.allocated
        h = ops.matmul(x, w)
        assert self.dev.memory.allocated > base

    def test_view_ops_do_not_allocate(self):
        x = Tensor(SpecArray((64, 64)), requires_grad=True)
        base = self.dev.memory.allocated
        ops.reshape(x, (4096,))
        ops.transpose(x, (1, 0))
        assert self.dev.memory.allocated == base


class TestCheckpoint:
    def test_grad_equivalence(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 8)), requires_grad=True)
        w = Tensor(rng.standard_normal((8, 8)), requires_grad=True)

        def block(x, w):
            return ops.gelu(ops.matmul(x, w))

        block(x, w).sum().backward()
        gx, gw = x.grad.numpy().copy(), w.grad.numpy().copy()
        x.zero_grad(), w.zero_grad()
        checkpoint(block, x, w).sum().backward()
        np.testing.assert_allclose(x.grad.numpy(), gx, rtol=1e-6)
        np.testing.assert_allclose(w.grad.numpy(), gw, rtol=1e-6)

    def test_memory_saved(self):
        dev = Device("ckpt", DeviceKind.GPU, memory_capacity=512 * MB)
        set_default_device(dev)
        try:
            def run(use_ckpt):
                dev.memory.reset_peak()
                x = Tensor(SpecArray((128, 512)), requires_grad=True)
                ws = [Tensor(SpecArray((512, 512)), requires_grad=True) for _ in range(4)]

                def block(x, *ws):
                    h = x
                    for w in ws:
                        h = ops.gelu(ops.matmul(h, w))
                    return h

                if use_ckpt:
                    out = checkpoint(block, x, *ws)
                else:
                    out = block(x, *ws)
                return dev.memory.peak  # peak during forward

            peak_plain = run(False)
            gc.collect()
            peak_ckpt = run(True)
            assert peak_ckpt < peak_plain
        finally:
            set_default_device(None)

    def test_forward_value_unchanged(self):
        x = Tensor(np.full((2, 2), 0.5), requires_grad=True)
        out = checkpoint(lambda a: ops.tanh(a), x)
        np.testing.assert_allclose(out.numpy(), np.tanh(0.5))


class TestSpecBackward:
    def test_shapes_propagate(self):
        x = Tensor(SpecArray((8, 16)), requires_grad=True)
        w = Tensor(SpecArray((16, 4)), requires_grad=True)
        loss = ops.cross_entropy(ops.matmul(x, w), None)
        loss.backward()
        assert x.grad.shape == (8, 16)
        assert w.grad.shape == (16, 4)

    def test_flops_charged_in_both_modes(self):
        from repro.cluster import uniform_cluster
        from repro.runtime import SpmdRuntime

        def prog(ctx):
            x = Tensor(
                SpecArray((64, 64)) if not ctx.materialize else np.zeros((64, 64), dtype=np.float32),
                requires_grad=True,
            )
            w = Tensor(
                SpecArray((64, 64)) if not ctx.materialize else np.zeros((64, 64), dtype=np.float32),
                requires_grad=True,
            )
            ops.matmul(x, w).sum().backward()
            return ctx.clock.time

        rt = SpmdRuntime(uniform_cluster(1))
        t_real = rt.run(prog)[0]
        t_spec = rt.run(prog, materialize=False)[0]
        assert t_real == pytest.approx(t_spec)
        assert t_real > 0
