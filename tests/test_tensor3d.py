"""3D tensor parallelism: matmul correctness, layout alternation, parity."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.parallel.tensor3d import (
    LAYOUT_JK,
    LAYOUT_KJ,
    Linear3D,
    Matmul3D,
    ParallelTransformerLayer3D,
    shard_activation_3d,
)
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor

from conftest import run_spmd
from parity_helpers import ATOL, B, H, NH, RATIO, SEED, block, make_input, serial_reference


def pc_3d(ctx):
    return ParallelContext(
        ctx, Config.from_dict(dict(parallel=dict(tensor=dict(size=8, mode="3d"))))
    )


class TestLinear3D:
    def test_linear_forward_backward_vs_serial(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((8, 8)).astype(np.float32)
        l = 2

        def prog(ctx):
            pc = pc_3d(ctx)
            lin = Linear3D(8, 8, pc, LAYOUT_JK, rng=np.random.default_rng(1))
            x = Tensor(shard_activation_3d(X.copy(), pc, LAYOUT_JK), requires_grad=True)
            y = lin(x)
            y.sum().backward()
            return pc.cube_i, pc.cube_j, pc.cube_k, y.numpy(), x.grad.numpy()

        from repro.nn import Linear
        from repro.nn import init as init_mod

        serial = Linear(8, 8, weight_init=init_mod.lecun_normal(), rng=np.random.default_rng(1))
        xs = Tensor(X.copy(), requires_grad=True)
        ys = serial(xs)
        ys.sum().backward()
        for i, j, k, out, xg in run_spmd(8, prog):
            # output layout = KJ: batch blocks (i, j), features by k
            bo = i * l + j
            np.testing.assert_allclose(
                out, block(block(ys.numpy(), 0, 4, bo), 1, l, k), atol=ATOL
            )
            # input grad layout = JK: batch (i, k), features by j
            bi = i * l + k
            np.testing.assert_allclose(
                xg, block(block(xs.grad.numpy(), 0, 4, bi), 1, l, j), atol=ATOL
            )

    def test_layout_flip_roundtrip(self):
        """Two chained linears return to the entry layout."""
        rng = np.random.default_rng(3)
        X = rng.standard_normal((8, 8)).astype(np.float32)
        l = 2

        def prog(ctx):
            pc = pc_3d(ctx)
            l1 = Linear3D(8, 8, pc, LAYOUT_JK, rng=np.random.default_rng(1))
            l2 = Linear3D(8, 8, pc, LAYOUT_KJ, rng=np.random.default_rng(2))
            x = Tensor(shard_activation_3d(X.copy(), pc, LAYOUT_JK))
            y = l2(l1(x))
            return pc.cube_i, pc.cube_j, pc.cube_k, y.numpy()

        from repro.nn import Linear
        from repro.nn import init as init_mod

        s1 = Linear(8, 8, weight_init=init_mod.lecun_normal(), rng=np.random.default_rng(1))
        s2 = Linear(8, 8, weight_init=init_mod.lecun_normal(), rng=np.random.default_rng(2))
        expect = s2(s1(Tensor(X.copy()))).numpy()
        for i, j, k, out in run_spmd(8, prog):
            bi = i * l + k  # back to JK layout
            np.testing.assert_allclose(
                out, block(block(expect, 0, 4, bi), 1, l, j), atol=ATOL
            )

    def test_in_features_must_divide_l_squared(self):
        def prog(ctx):
            pc = pc_3d(ctx)
            Linear3D(6, 8, pc)  # 6 % 4 != 0

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(8, prog)

    def test_collective_pattern(self):
        """Forward = 2 allgathers + 1 reduce-scatter per linear; groups of
        size l only (the 3D scaling advantage)."""
        rt = SpmdRuntime(uniform_cluster(8))

        def prog(ctx):
            pc = pc_3d(ctx)
            lin = Linear3D(8, 8, pc, LAYOUT_JK, bias=False)
            # local activation: batch 8/l^2 = 2 rows, features 8/l = 4
            lin(Tensor(SpecArray((2, 4))))

        rt.run(prog, materialize=False)
        ag = rs = 0
        for key, grp in rt._groups.items():
            calls = grp.counters.calls_total
            if calls:
                assert len(key) == 2  # traffic only in axis groups of size l
            ag += grp.counters.by_op_calls.get("all_gather", 0)
            rs += grp.counters.by_op_calls.get("reduce_scatter", 0)
        # one AG of X per (i,j) pair + one AG of W per (j,k) pair = 8 groups;
        # one RS of C per (i,k) pair = 4 groups
        assert ag == 8
        assert rs == 4


class TestTransformer3DParity:
    def test_full_layer_parity(self):
        x_g = make_input()
        ref = serial_reference(x_g)
        l = 2

        def prog(ctx):
            pc = pc_3d(ctx)
            body = LAYOUT_KJ
            layer = ParallelTransformerLayer3D(
                H, NH, pc, body, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_activation_3d(x_g.copy(), pc, body), requires_grad=True)
            y = layer(x)
            y.sum().backward()
            return (
                pc.cube_i, pc.cube_j, pc.cube_k,
                y.numpy(), x.grad.numpy(),
            )

        for i, j, k, out, xg in run_spmd(8, prog):
            # body layout KJ: batch (i, j), features k
            bi = i * l + j
            np.testing.assert_allclose(
                out, block(block(ref["out"], 0, 4, bi), 2, l, k), atol=ATOL
            )
            np.testing.assert_allclose(
                xg, block(block(ref["x_grad"], 0, 4, bi), 2, l, k), atol=ATOL
            )

    def test_memory_sharded_eight_ways(self):
        def prog(ctx):
            pc = pc_3d(ctx)
            layer = ParallelTransformerLayer3D(H, NH, pc, LAYOUT_JK, mlp_ratio=RATIO)
            return layer.num_parameters()

        from repro.nn import TransformerLayer

        serial_n = TransformerLayer(H, NH, mlp_ratio=RATIO).num_parameters()
        for n in run_spmd(8, prog):
            assert n < 0.25 * serial_n
