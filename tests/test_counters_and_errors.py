"""Direct unit tests for CommCounters and the typed runtime errors."""

import pytest

from repro.comm import CommCounters
from repro.runtime.errors import (
    CollectiveTimeout,
    RankFailure,
    RemoteRankError,
    SpmdAborted,
)
from repro.utils import RetryPolicy


class TestCommCounters:
    def test_record_accumulates(self):
        c = CommCounters()
        c.record("all_reduce", 100, 25)
        c.record("all_reduce", 100, 25)
        c.record("broadcast", 40, 10)
        assert c.bytes_total == 240
        assert c.elements_total == 60
        assert c.calls_total == 3
        assert c.by_op_bytes == {"all_reduce": 200, "broadcast": 40}
        assert c.by_op_elements == {"all_reduce": 50, "broadcast": 10}
        assert c.by_op_calls == {"all_reduce": 2, "broadcast": 1}

    def test_record_retry_counts_wire_but_not_calls(self):
        c = CommCounters()
        c.record("all_reduce", 100, 25)
        c.record_retry("all_reduce", 200, 50, attempts=2)
        # retransmitted bytes really cross the wire...
        assert c.bytes_total == 300
        assert c.elements_total == 75
        assert c.by_op_bytes == {"all_reduce": 300}
        # ...but the call still succeeds exactly once
        assert c.calls_total == 1
        assert c.retries_total == 2
        assert c.retry_bytes_total == 200
        assert c.by_op_retries == {"all_reduce": 2}

    def test_reset_clears_everything(self):
        c = CommCounters()
        c.record("p2p", 10, 2)
        c.record_retry("p2p", 10, 2)
        c.reset()
        assert c.bytes_total == 0
        assert c.calls_total == 0
        assert c.retries_total == 0
        assert c.retry_bytes_total == 0
        assert c.by_op_bytes == {}
        assert c.by_op_retries == {}

    def test_merged_with_sums_all_fields(self):
        a, b = CommCounters(), CommCounters()
        a.record("all_reduce", 100, 25)
        a.record_retry("all_reduce", 50, 12)
        b.record("p2p", 8, 2)
        b.record_retry("p2p", 8, 2, attempts=3)
        m = a.merged_with(b)
        assert m.bytes_total == 166
        assert m.calls_total == 2
        assert m.retries_total == 4
        assert m.retry_bytes_total == 58
        assert m.by_op_retries == {"all_reduce": 1, "p2p": 3}
        # inputs untouched
        assert a.retries_total == 1 and b.retries_total == 3


class TestTypedErrors:
    def test_rank_failure_attributes(self):
        e = RankFailure(3, step=7)
        assert e.rank == 3 and e.step == 7 and e.sim_time is None
        assert "rank 3" in str(e) and "step 7" in str(e)

        e = RankFailure(1, sim_time=0.25)
        assert e.rank == 1 and e.step is None and e.sim_time == 0.25
        assert "0.25" in str(e)

    def test_collective_timeout_attributes(self):
        e = CollectiveTimeout("all_reduce", [0, 1, 2], attempts=5)
        assert e.op == "all_reduce"
        assert e.ranks == (0, 1, 2)  # normalized to a tuple
        assert e.attempts == 5 and e.timeout is None
        assert "all_reduce" in str(e) and "5 failed attempts" in str(e)

        e = CollectiveTimeout("recv", (0, 1), timeout=2.5)
        assert e.timeout == 2.5 and e.attempts == 0
        assert "2.5" in str(e)

    def test_error_hierarchy(self):
        # chaos code catches RuntimeError as the common supertype
        for err in (RankFailure(0, step=1),
                    CollectiveTimeout("p2p", (0, 1)),
                    SpmdAborted(1, ValueError("x")),
                    RemoteRankError(2, ValueError("x"))):
            assert isinstance(err, RuntimeError)


class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(max_retries=3, backoff_base=1e-4,
                        backoff_factor=2.0, backoff_cap=3e-4)
        assert p.backoff(0) == 0.0
        assert p.backoff(1) == pytest.approx(1e-4)
        assert p.backoff(2) == pytest.approx(2e-4)
        assert p.backoff(3) == pytest.approx(3e-4)  # capped
        assert p.backoff(9) == pytest.approx(3e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
