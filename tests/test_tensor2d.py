"""2D (SUMMA) tensor parallelism: matmul correctness, layer parity,
Table 1 volume."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.parallel.tensor2d import (
    Linear2D,
    LayerNorm2D,
    ParallelTransformerLayer2D,
    Summa2DMatMul,
    shard_activation_2d,
)
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor

from conftest import run_spmd
from parity_helpers import ATOL, B, H, NH, RATIO, S, SEED, block, make_input, serial_reference


def pc_2d(ctx, size=4):
    return ParallelContext(
        ctx, Config.from_dict(dict(parallel=dict(tensor=dict(size=size, mode="2d"))))
    )


class TestSummaMatmul:
    def test_forward_backward_vs_numpy(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((4, 6)).astype(np.float32)
        W = rng.standard_normal((6, 8)).astype(np.float32)
        G = rng.standard_normal((4, 8)).astype(np.float32)  # upstream grad

        def prog(ctx):
            pc = pc_2d(ctx)
            i, j = pc.row_rank, pc.col_rank
            a = Tensor(block(block(A, 0, 2, i), 1, 2, j), requires_grad=True)
            w = Tensor(block(block(W, 0, 2, i), 1, 2, j), requires_grad=True)
            c = Summa2DMatMul.apply(
                a, w,
                pc.comm(ParallelMode.PARALLEL_2D_ROW),
                pc.comm(ParallelMode.PARALLEL_2D_COL),
            )
            g_local = block(block(G, 0, 2, i), 1, 2, j)
            c.backward(Tensor(g_local))
            return i, j, c.numpy(), a.grad.numpy(), w.grad.numpy()

        C = A @ W
        dA = G @ W.T
        dW = A.T @ G
        for i, j, c, da, dw in run_spmd(4, prog):
            np.testing.assert_allclose(c, block(block(C, 0, 2, i), 1, 2, j), atol=ATOL)
            np.testing.assert_allclose(da, block(block(dA, 0, 2, i), 1, 2, j), atol=ATOL)
            np.testing.assert_allclose(dw, block(block(dW, 0, 2, i), 1, 2, j), atol=ATOL)

    def test_3d_activation_operand(self):
        """Leading batch+seq dims flatten correctly for the weight grad."""
        rng = np.random.default_rng(1)
        A = rng.standard_normal((4, 3, 6)).astype(np.float32)
        W = rng.standard_normal((6, 8)).astype(np.float32)

        def prog(ctx):
            pc = pc_2d(ctx)
            i, j = pc.row_rank, pc.col_rank
            a = Tensor(block(block(A, 0, 2, i), 2, 2, j), requires_grad=True)
            w = Tensor(block(block(W, 0, 2, i), 1, 2, j), requires_grad=True)
            c = Summa2DMatMul.apply(
                a, w,
                pc.comm(ParallelMode.PARALLEL_2D_ROW),
                pc.comm(ParallelMode.PARALLEL_2D_COL),
            )
            c.sum().backward()
            return i, j, c.numpy(), w.grad.numpy()

        C = A @ W
        dW = A.reshape(-1, 6).T @ np.ones((12, 8), dtype=np.float32)
        for i, j, c, dw in run_spmd(4, prog):
            np.testing.assert_allclose(c, block(block(C, 0, 2, i), 2, 2, j), atol=ATOL)
            np.testing.assert_allclose(dw, block(block(dW, 0, 2, i), 1, 2, j), atol=ATOL)

    def test_table1_wire_volume(self):
        """fwd+bwd wire elements == 3(q-1)(S_X + S_W) exactly (Table 1)."""
        b, s, h = 4, 8, 16
        rt = SpmdRuntime(uniform_cluster(4))

        def prog(ctx):
            pc = pc_2d(ctx)
            i, j = pc.row_rank, pc.col_rank
            x = Tensor(SpecArray((b // 2, s, h // 2)), requires_grad=True)
            w = Tensor(SpecArray((h // 2, h // 2)), requires_grad=True)
            c = Summa2DMatMul.apply(
                x, w,
                pc.comm(ParallelMode.PARALLEL_2D_ROW),
                pc.comm(ParallelMode.PARALLEL_2D_COL),
            )
            c.sum().backward()

        rt.run(prog, materialize=False)
        total = 0
        for ranks in ([0, 1], [2, 3], [0, 2], [1, 3]):
            g = rt.group(tuple(ranks))
            total += g.counters.elements_total
        q = 2
        sx, sw = b * s * h, h * h
        assert total == 3 * (q - 1) * (sx + sw)


class TestLayerParity:
    def test_full_layer_parity(self):
        x_g = make_input()
        ref = serial_reference(x_g)
        q = 2

        def prog(ctx):
            pc = pc_2d(ctx)
            layer = ParallelTransformerLayer2D(
                H, NH, pc, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_activation_2d(x_g.copy(), pc), requires_grad=True)
            y = layer(x)
            y.sum().backward()
            return (
                pc.row_rank, pc.col_rank,
                y.numpy(), x.grad.numpy(),
                layer.mlp.dense_1.weight.grad.numpy(),
                layer.norm_1.gamma.grad.numpy(),
            )

        for i, j, out, xg, w1g, lng in run_spmd(4, prog):
            np.testing.assert_allclose(
                out, block(block(ref["out"], 0, q, i), 2, q, j), atol=ATOL
            )
            np.testing.assert_allclose(
                xg, block(block(ref["x_grad"], 0, q, i), 2, q, j), atol=ATOL
            )
            np.testing.assert_allclose(
                w1g, block(block(ref["mlp_w1_grad"], 0, q, i), 1, q, j), atol=ATOL
            )
            np.testing.assert_allclose(
                lng, block(ref["ln1_gamma_grad"], 0, q, j), atol=ATOL
            )

    def test_qkv_grad_parity(self):
        """The per-section QKV sharding must produce the serial grads."""
        x_g = make_input()
        ref = serial_reference(x_g)
        q = 2

        def prog(ctx):
            pc = pc_2d(ctx)
            layer = ParallelTransformerLayer2D(
                H, NH, pc, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_activation_2d(x_g.copy(), pc), requires_grad=True)
            layer(x).sum().backward()
            return pc.row_rank, pc.col_rank, layer.attention.qkv.weight.grad.numpy()

        full = ref["qkv_w_grad"]  # [H, 3H]
        sections = np.split(full, 3, axis=1)
        for i, j, wg in run_spmd(4, prog):
            expect = np.concatenate(
                [block(block(sec, 0, q, i), 1, q, j) for sec in sections], axis=1
            )
            np.testing.assert_allclose(wg, expect, atol=ATOL)

    def test_memory_sharded_four_ways(self):
        def prog(ctx):
            pc = pc_2d(ctx)
            layer = ParallelTransformerLayer2D(H, NH, pc, mlp_ratio=RATIO)
            return layer.num_parameters()

        from repro.nn import TransformerLayer

        serial_n = TransformerLayer(H, NH, mlp_ratio=RATIO).num_parameters()
        for n in run_spmd(4, prog):
            assert n < 0.35 * serial_n  # ~1/4 of weights (+small LN shards)

    def test_divisibility_validation(self):
        def prog(ctx):
            pc = pc_2d(ctx)
            Linear2D(7, 8, pc)

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(4, prog)

    def test_layernorm2d_stats_match_serial(self):
        rng = np.random.default_rng(5)
        x_g = (rng.standard_normal((4, H)) * 3 + 1).astype(np.float32)

        def prog(ctx):
            pc = pc_2d(ctx)
            ln = LayerNorm2D(H, pc, rng=np.random.default_rng(1))
            x = Tensor(block(block(x_g, 0, 2, pc.row_rank), 1, 2, pc.col_rank))
            return pc.row_rank, pc.col_rank, ln(x).numpy()

        mu = x_g.mean(-1, keepdims=True)
        sd = x_g.std(-1, keepdims=True)
        expect_full = (x_g - mu) / np.sqrt(sd**2 + 1e-5)
        for i, j, out in run_spmd(4, prog):
            np.testing.assert_allclose(
                out, block(block(expect_full, 0, 2, i), 1, 2, j), atol=1e-4
            )
