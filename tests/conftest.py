"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.runtime import SpmdRuntime

#: builtin pytest marks that may legitimately appear in a -m expression
_BUILTIN_MARKS = {
    "parametrize", "skip", "skipif", "xfail", "usefixtures", "filterwarnings",
}

_MARK_EXPR_KEYWORDS = {"and", "or", "not", "True", "False", "None"}


def pytest_addoption(parser):
    parser.addoption(
        "--fault-seed",
        action="store",
        type=int,
        default=0,
        help="seed for the deterministic fault-injection (chaos) tests",
    )


def pytest_configure(config):
    """Fail fast on ``-m`` expressions naming unregistered markers.

    ``--strict-markers`` only protects the *declaration* side
    (``@pytest.mark.typo`` errors at collection); a typo on the *selection*
    side (``pytest -m chaso``) would still silently deselect everything and
    report success.  Validate every identifier in the expression against the
    registered marker list so a CI lane cannot go green by matching nothing.
    """
    expr = config.getoption("markexpr", "")
    if not expr:
        return
    registered = {
        line.split(":", 1)[0].split("(", 1)[0].strip()
        for line in config.getini("markers")
    }
    allowed = registered | _BUILTIN_MARKS | _MARK_EXPR_KEYWORDS
    idents = set(re.findall(r"[A-Za-z_]\w*", expr))
    unknown = sorted(idents - allowed)
    if unknown:
        raise pytest.UsageError(
            f"-m expression {expr!r} references unregistered marker(s) "
            f"{unknown}; registered: {sorted(registered)}"
        )


@pytest.fixture
def fault_seed(request):
    return request.config.getoption("--fault-seed")


@pytest.fixture
def cluster4():
    return uniform_cluster(4)


@pytest.fixture
def cluster8():
    return uniform_cluster(8)


@pytest.fixture
def rt4(cluster4):
    return SpmdRuntime(cluster4)


@pytest.fixture
def rt8(cluster8):
    return SpmdRuntime(cluster8)


def run_spmd(world_size: int, fn, *args, materialize: bool = True, **kwargs):
    """One-shot SPMD run on a fresh uniform cluster; returns per-rank results."""
    rt = SpmdRuntime(uniform_cluster(world_size))
    return rt.run(fn, *args, materialize=materialize, **kwargs)


def rand(shape, seed=0, dtype=np.float32):
    return np.random.default_rng(seed).standard_normal(shape).astype(dtype)
