"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.runtime import SpmdRuntime


def pytest_addoption(parser):
    parser.addoption(
        "--fault-seed",
        action="store",
        type=int,
        default=0,
        help="seed for the deterministic fault-injection (chaos) tests",
    )


@pytest.fixture
def fault_seed(request):
    return request.config.getoption("--fault-seed")


@pytest.fixture
def cluster4():
    return uniform_cluster(4)


@pytest.fixture
def cluster8():
    return uniform_cluster(8)


@pytest.fixture
def rt4(cluster4):
    return SpmdRuntime(cluster4)


@pytest.fixture
def rt8(cluster8):
    return SpmdRuntime(cluster8)


def run_spmd(world_size: int, fn, *args, materialize: bool = True, **kwargs):
    """One-shot SPMD run on a fresh uniform cluster; returns per-rank results."""
    rt = SpmdRuntime(uniform_cluster(world_size))
    return rt.run(fn, *args, materialize=materialize, **kwargs)


def rand(shape, seed=0, dtype=np.float32):
    return np.random.default_rng(seed).standard_normal(shape).astype(dtype)
