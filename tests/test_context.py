"""Tests for the ParallelContext: rank decomposition and group building."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.config import Config
from repro.context import ParallelContext, ParallelMode, global_context
from repro.runtime import SpmdRuntime

from conftest import run_spmd


def make_pc(ctx, cdict):
    return ParallelContext(ctx, Config.from_dict(cdict))


class TestDecomposition:
    def test_tensor_fastest(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=2, mode="1d"), pipeline=2)))
            return (pc.dp_rank, pc.pp_rank, pc.tp_rank)

        res = run_spmd(8, prog)
        assert res[0] == (0, 0, 0)
        assert res[1] == (0, 0, 1)  # tensor varies fastest
        assert res[2] == (0, 1, 0)
        assert res[4] == (1, 0, 0)

    def test_group_membership(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=2, mode="1d"), pipeline=2)))
            return (
                pc.comm(ParallelMode.TENSOR).group.ranks,
                pc.comm(ParallelMode.PIPELINE).group.ranks,
                pc.comm(ParallelMode.DATA).group.ranks,
            )

        res = run_spmd(8, prog)
        t, p, d = res[0]
        assert t == [0, 1]
        assert p == [0, 2]
        assert d == [0, 4]
        t5, p5, d5 = res[5]  # rank 5 = dp1, pp0, tp1
        assert t5 == [4, 5]
        assert p5 == [5, 7]
        assert d5 == [1, 5]

    def test_world_not_divisible(self):
        def prog(ctx):
            make_pc(ctx, dict(parallel=dict(tensor=dict(size=3, mode="1d"))))

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(4, prog)

    def test_global_context_accessor(self):
        def prog(ctx):
            pc = make_pc(ctx, {})
            return global_context() is pc

        assert all(run_spmd(2, prog))

    def test_missing_mode_raises(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=4, mode="1d"))))
            try:
                pc.comm(ParallelMode.PARALLEL_2D_ROW)
            except ValueError:
                return "raised"

        assert run_spmd(4, prog) == ["raised"] * 4


class TestGridGroups:
    def test_2d_coordinates(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=4, mode="2d"))))
            row = pc.comm(ParallelMode.PARALLEL_2D_ROW)
            col = pc.comm(ParallelMode.PARALLEL_2D_COL)
            return pc.row_rank, pc.col_rank, row.group.ranks, col.group.ranks

        res = run_spmd(4, prog)
        # rank 3 -> (i=1, j=1): row group = {2, 3}, col group = {1, 3}
        i, j, row, col = res[3]
        assert (i, j) == (1, 1)
        assert row == [2, 3]
        assert col == [1, 3]
        # local rank within row group equals j
        assert res[2][2] == [2, 3]

    def test_25d_coordinates(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=8, mode="2.5d", depth=2))))
            dep = pc.comm(ParallelMode.PARALLEL_2P5D_DEP)
            return pc.dep_rank, pc.row_rank, pc.col_rank, dep.group.ranks

        res = run_spmd(8, prog)
        assert res[0][:3] == (0, 0, 0)
        assert res[7][:3] == (1, 1, 1)
        assert res[0][3] == [0, 4]  # depth partners

    def test_3d_coordinates(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=8, mode="3d"))))
            inp = pc.comm(ParallelMode.PARALLEL_3D_INPUT)
            wgt = pc.comm(ParallelMode.PARALLEL_3D_WEIGHT)
            out = pc.comm(ParallelMode.PARALLEL_3D_OUTPUT)
            return (pc.cube_i, pc.cube_j, pc.cube_k,
                    inp.group.ranks, wgt.group.ranks, out.group.ranks)

        res = run_spmd(8, prog)
        i, j, k, inp, wgt, out = res[5]  # 5 = 1*4 + 0*2 + 1 -> (1, 0, 1)
        assert (i, j, k) == (1, 0, 1)
        assert inp == [4, 5]   # vary k
        assert wgt == [5, 7]   # vary j
        assert out == [1, 5]   # vary i

    def test_grid_groups_nest_inside_tensor_group(self):
        """With dp=2, each replica's 2D grid uses its own consecutive
        ranks."""

        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=4, mode="2d"))))
            return pc.comm(ParallelMode.PARALLEL_2D_ROW).group.ranks

        res = run_spmd(8, prog)
        assert res[0] == [0, 1]
        assert res[4] == [4, 5]  # second data-parallel replica


class TestSeeds:
    def test_model_rng_identical_across_ranks(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=4, mode="1d"))))
            return float(pc.model_rng().random())

        res = run_spmd(4, prog)
        assert len(set(res)) == 1

    def test_data_rng_differs_across_dp(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=2, mode="1d"))))
            return float(pc.data_rng().random())

        res = run_spmd(4, prog)
        assert res[0] == res[1]  # same dp replica
        assert res[0] != res[2]  # different dp replica

    def test_dropout_rng_distinct_per_rank(self):
        def prog(ctx):
            pc = make_pc(ctx, {})
            return float(pc.dropout_rng().random())

        assert len(set(run_spmd(4, prog))) == 4

    def test_sequence_mode_builds_sequence_group(self):
        def prog(ctx):
            pc = make_pc(ctx, dict(parallel=dict(tensor=dict(size=4, mode="sequence"))))
            return pc.comm(ParallelMode.SEQUENCE).group.ranks

        assert run_spmd(4, prog)[0] == [0, 1, 2, 3]
