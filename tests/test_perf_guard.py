"""Wall-clock fast-path guard (ISSUE 8, ``pytest -m perf``).

The fast path attacks *host* wall-clock only: pooled comm buffers,
event-driven rendezvous and spec-mode shortcuts must leave every simulated
result bitwise identical.  The tests here enforce that contract:

1. pooled vs unpooled runs are bitwise identical — losses, parameters,
   wire bytes, collective calls and simulated makespan — across
   DDP / ZeRO / pipeline x overlap x sanitize;
2. the event-driven rendezvous still diagnoses a :class:`CollectiveDesync`
   within one diagnosis window (waiters wake on the ``_DIAG_WINDOW``
   cadence while a sanitizer is installed, and immediately on rank exit);
3. an unreturned pool loan is detected at end of run and *named*;
4. deadline accounting is real monotonic elapsed time — condition-variable
   wake-ups (which the old ``deadline -= poll_interval`` scheme counted as
   a full poll tick each) no longer shorten the timeout.
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.autograd import ops
from repro.cluster import uniform_cluster
from repro.comm import Communicator
from repro.comm.cost import CostModel
from repro.config import Config
from repro.context import ParallelContext
from repro.nn import CrossEntropyLoss, Linear, Module
from repro.parallel.data import DistributedDataParallel
from repro.parallel.pipeline import GPipeSchedule, partition_uniform
from repro.runtime import RemoteRankError, SpmdRuntime
from repro.runtime.buffer_pool import BufferPool, BufferPoolLeak
from repro.runtime.errors import CollectiveTimeout
from repro.sanitize.errors import CollectiveDesync
from repro.tensor import Tensor

pytestmark = pytest.mark.perf

fast = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

H, C, B = 16, 4, 8
LR = 0.05
LONG_TIMEOUT = 300.0


def _pc(ctx):
    return ParallelContext(ctx, Config.from_dict({}))


class _MLP(Module):
    def __init__(self):
        super().__init__()
        self.l1 = Linear(H, 32, rng=np.random.default_rng(11))
        self.l2 = Linear(32, 32, rng=np.random.default_rng(12))
        self.l3 = Linear(32, C, rng=np.random.default_rng(13))

    def forward(self, x):
        return self.l3(ops.gelu(self.l2(ops.gelu(self.l1(x)))))


def _batch(step):
    rng = np.random.default_rng((7, step))
    X = rng.standard_normal((2 * B, H)).astype(np.float32)
    Y = rng.integers(0, C, 2 * B)
    return X, Y


def _fingerprint(rt, world):
    counters = rt.group(tuple(range(world))).counters
    return {
        "bytes": counters.bytes_total,
        "by_op": dict(counters.by_op_bytes),
        "calls": counters.calls_total,
        "makespan": rt.max_time(),
    }


# -- pooled vs unpooled bitwise parity --------------------------------------


def _train_ddp(pool, overlap, sanitize, world=4, steps=2):
    rt = SpmdRuntime(
        uniform_cluster(world), comm_overlap=overlap,
        sanitize=True if sanitize else None, buffer_pool=pool,
    )
    crit = CrossEntropyLoss()

    def prog(ctx):
        ddp = DistributedDataParallel(
            _MLP(), ctx_pc := _pc(ctx), bucket_mb=0.002, overlap=overlap
        )
        model = ddp.module
        losses = []
        for s in range(steps):
            X, Y = _batch(s)
            n = X.shape[0] // ctx_pc.data_size
            loss = crit(
                ddp(Tensor(X[ctx.rank * n:(ctx.rank + 1) * n].copy())),
                Y[ctx.rank * n:(ctx.rank + 1) * n],
            )
            loss.backward()
            ddp.sync()
            for p in model.parameters():
                p.payload[...] = p.payload - LR * p.grad.payload
                p.grad = None
            losses.append(loss.item())
        return losses, [p.numpy().copy() for p in model.parameters()]

    results = rt.run(prog)
    return results, _fingerprint(rt, world), rt


def _train_zero(pool, overlap, sanitize, world=2, steps=2):
    from repro.zero import ZeroOffloadEngine
    from repro.zero.policies import NoOffloadPolicy

    class Block(Module):
        def __init__(self, seed, out=H):
            super().__init__()
            self.lin = Linear(H, out, rng=np.random.default_rng(seed))

        def forward(self, x):
            y = self.lin(x)
            return ops.gelu(y) if self.lin.out_features == H else y

    rt = SpmdRuntime(
        uniform_cluster(world), comm_overlap=overlap,
        sanitize=True if sanitize else None, buffer_pool=pool,
    )
    crit = CrossEntropyLoss()

    def prog(ctx):
        comm = Communicator.world(ctx)
        blocks = [Block(21), Block(22), Block(23, out=C)]
        pol = NoOffloadPolicy(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank)
        eng = ZeroOffloadEngine(
            ctx, blocks, comm, pol, criterion=crit,
            chunk_mb=0.001, lr=1e-2, param_dtype="float32", overlap=overlap,
        )
        losses = []
        for s in range(steps):
            X, Y = _batch(s)
            n = X.shape[0] // world
            losses.append(
                eng.train_step(X[ctx.rank * n:(ctx.rank + 1) * n],
                               Y[ctx.rank * n:(ctx.rank + 1) * n])
            )
        eng.gather_parameters()
        return losses, [b.lin.weight.numpy().copy() for b in blocks]

    results = rt.run(prog)
    return results, _fingerprint(rt, world), rt


def _run_pipeline(pool, overlap, sanitize, stages=2, microbatches=4):
    rt = SpmdRuntime(
        uniform_cluster(stages), comm_overlap=overlap,
        sanitize=True if sanitize else None, buffer_pool=pool,
    )
    crit = CrossEntropyLoss()
    X, Y = _batch(0)

    class Stage(Module):
        def __init__(self, idxs, with_tail):
            super().__init__()
            self.layers = [Linear(H, H, rng=np.random.default_rng((31, i)))
                           for i in idxs]
            for i, l in enumerate(self.layers):
                setattr(self, f"lin{i}", l)
            self.head = (
                Linear(H, C, rng=np.random.default_rng(35)) if with_tail else None
            )

        def forward(self, x):
            for l in self.layers:
                x = ops.gelu(l(x))
            return self.head(x) if self.head is not None else x

    def prog(ctx):
        pc = ParallelContext(
            ctx,
            Config.from_dict(
                dict(parallel=dict(pipeline=stages), num_microbatches=microbatches)
            ),
        )
        s, e = partition_uniform(4, stages)[pc.pp_rank]
        stage = Stage(range(s, e), with_tail=pc.is_last_pipeline_stage())
        sched = GPipeSchedule(pc, microbatches)
        loss = sched.run(
            stage,
            X.copy() if pc.is_first_pipeline_stage() else None,
            Y if pc.is_last_pipeline_stage() else None,
            crit,
        )
        return loss, stage.layers[0].weight.grad.numpy().copy()

    results = rt.run(prog)
    return results, _fingerprint(rt, stages), rt


def _assert_identical(res_pooled, res_plain, fp_pooled, fp_plain):
    for (loss_p, arrs_p), (loss_u, arrs_u) in zip(res_pooled, res_plain):
        assert loss_p == loss_u  # floats compared exact: bitwise
        arrs_p = arrs_p if isinstance(arrs_p, list) else [arrs_p]
        arrs_u = arrs_u if isinstance(arrs_u, list) else [arrs_u]
        for a, b in zip(arrs_p, arrs_u):
            np.testing.assert_array_equal(a, b)
    assert fp_pooled == fp_plain


@pytest.mark.parametrize("overlap", [False, True])
@pytest.mark.parametrize("sanitize", [False, True])
class TestPooledParity:
    def test_ddp(self, overlap, sanitize):
        res_pool, fp_pool, rt = _train_ddp(True, overlap, sanitize)
        res_plain, fp_plain, _ = _train_ddp(False, overlap, sanitize)
        _assert_identical(res_pool, res_plain, fp_pool, fp_plain)
        # the pooled run must actually exercise the pool, and the flat
        # buckets restocked after step 1 must be reused in step 2
        assert rt.buffer_pool.loans > 0
        assert rt.buffer_pool.reuses > 0

    def test_zero(self, overlap, sanitize):
        res_pool, fp_pool, rt = _train_zero(True, overlap, sanitize)
        res_plain, fp_plain, _ = _train_zero(False, overlap, sanitize)
        _assert_identical(res_pool, res_plain, fp_pool, fp_plain)
        assert rt.buffer_pool.loans > 0

    def test_pipeline(self, overlap, sanitize):
        res_pool, fp_pool, _ = _run_pipeline(True, overlap, sanitize)
        res_plain, fp_plain, _ = _run_pipeline(False, overlap, sanitize)
        _assert_identical(res_pool, res_plain, fp_pool, fp_plain)


# -- event-driven rendezvous semantics --------------------------------------


class TestEventDrivenRendezvous:
    def test_desync_diagnosed_within_one_window(self):
        """A rank exiting without joining a collective must convict the
        round in ~one diagnosis window, not a deadlock timeout — the
        waiter's sanitizer tick survived the event-driven rewrite (and the
        exiting rank's ``_wake_all`` makes the diagnosis immediate)."""

        def prog(ctx):
            if ctx.rank == 0:
                c = Communicator.world(ctx)
                return c.all_reduce(np.ones(4, dtype=np.float32))
            return None  # rank 1 exits without joining

        rt = SpmdRuntime(
            uniform_cluster(2), deadlock_timeout=LONG_TIMEOUT, sanitize=True
        )
        t0 = time.monotonic()
        with pytest.raises(RemoteRankError) as ei:
            rt.run(prog)
        elapsed = time.monotonic() - t0
        assert isinstance(ei.value.__cause__, CollectiveDesync)
        assert elapsed < LONG_TIMEOUT / 10

    def test_async_handle_desync_diagnosed_fast(self):
        """Same guarantee for a waiter parked in an async collective
        handle (the second of the two deduplicated wait loops)."""

        def prog(ctx):
            if ctx.rank == 0:
                c = Communicator.world(ctx)
                return c.iallreduce(np.ones(4, dtype=np.float32)).wait()
            return None

        rt = SpmdRuntime(
            uniform_cluster(2), deadlock_timeout=LONG_TIMEOUT,
            sanitize=True, comm_overlap=True,
        )
        t0 = time.monotonic()
        with pytest.raises(RemoteRankError) as ei:
            rt.run(prog)
        elapsed = time.monotonic() - t0
        assert isinstance(ei.value.__cause__, CollectiveDesync)
        assert elapsed < LONG_TIMEOUT / 10

    def test_failure_wakes_parked_rendezvous_immediately(self):
        """With no sanitizer there are no diagnosis ticks at all; a peer
        failure must still interrupt a parked waiter right away via the
        runtime's wake broadcast (not after the deadlock timeout)."""

        def prog(ctx):
            c = Communicator.world(ctx)
            if ctx.rank == 1:
                raise ValueError("boom")
            return c.all_reduce(np.ones(4, dtype=np.float32))

        rt = SpmdRuntime(uniform_cluster(2), deadlock_timeout=LONG_TIMEOUT)
        t0 = time.monotonic()
        with pytest.raises(RemoteRankError, match="boom"):
            rt.run(prog)
        assert time.monotonic() - t0 < LONG_TIMEOUT / 10

    def test_timeout_measures_real_elapsed_time(self):
        """Frequent condition wake-ups (here: mailbox puts for an unrelated
        tag) must not shorten the recv deadline.  The old accounting
        subtracted a full poll interval per wake-up, so 50 early notifies
        burned 2.5 s of a 0.6 s budget instantly; real monotonic elapsed
        time is immune."""
        TIMEOUT = 0.6

        def prog(ctx):
            c = Communicator.world(ctx)
            if ctx.rank == 1:
                for _ in range(50):  # each put notifies the mailbox cond
                    c.send(np.ones(1, dtype=np.float32), dst=0, tag="spam")
                return None
            t0 = time.monotonic()
            try:
                c.recv(src=1, tag="never")
            except CollectiveTimeout:
                return time.monotonic() - t0
            return None

        rt = SpmdRuntime(uniform_cluster(2), deadlock_timeout=TIMEOUT)
        elapsed = rt.run(prog)[0]
        assert elapsed is not None, "recv did not time out"
        assert elapsed >= TIMEOUT * 0.9


# -- pool lifecycle ----------------------------------------------------------


class TestBufferPool:
    def test_leak_detected_and_named(self):
        """A loan that is neither restocked nor adopted must fail the run
        with the loan's label in the error."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.runtime.buffer_pool.loan((8,), np.float32, "test.leaky")

        rt = SpmdRuntime(uniform_cluster(2))
        with pytest.raises(BufferPoolLeak, match="test.leaky"):
            rt.run(prog)
        # the leak report drains outstanding state: the runtime is reusable
        rt.run(lambda ctx: None)

    def test_loan_restock_reuses_buffer(self):
        pool = BufferPool()
        a = pool.loan((16,), np.float32, "x")
        pool.restock(a)
        b = pool.loan((16,), np.float32, "x")
        assert b is a
        assert pool.reuses == 1
        pool.restock(b)
        # different shape or dtype never shares storage
        c = pool.loan((17,), np.float32, "x")
        d = pool.loan((16,), np.float64, "x")
        assert c is not a and d is not a
        pool.restock(c)
        pool.restock(d)
        pool.check_leaks()

    def test_adopt_removes_from_tracking(self):
        pool = BufferPool()
        a = pool.loan((4,), np.float32, "escapes")
        pool.adopt(a)
        pool.check_leaks()  # no leak
        pool.restock(a)  # donation of an adopted buffer is also legal
        assert pool.loan((4,), np.float32, "y") is a

    def test_restock_drops_frozen_views_and_noncontiguous(self):
        """Race-detector loans stay frozen until final_release; the pool
        must refuse to recirculate them (and any view/non-contiguous
        array) rather than hand out a read-only or aliased buffer."""
        pool = BufferPool()
        frozen = pool.loan((4,), np.float32, "frozen")
        frozen.flags.writeable = False
        pool.restock(frozen)
        z = pool.loan((4,), np.float32, "z")
        assert z is not frozen
        pool.restock(z)

        base = np.zeros((4, 4), dtype=np.float32)
        pool.restock(base[1])  # view
        pool.restock(np.asfortranarray(np.zeros((3, 3))).T[::2])
        pool.check_leaks()


# hypothesis ops for TestBufferPoolProperties: (op, index) where index picks
# the shape for loans/donations and the held buffer for returns
_POOL_SHAPES = ((4,), (16,), (4, 4))
_pool_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["loan", "restock", "freeze_restock", "adopt", "donate"]),
        st.integers(0, 31),
    ),
    min_size=1, max_size=80,
)


class TestBufferPoolProperties:
    """Hypothesis lane over random loan/restock/adopt/donate schedules."""

    def _replay(self, ops):
        """Run an op schedule; returns (pool, held, frozen) where held is
        the list of (arr, label) still outstanding and frozen keeps a live
        reference to every buffer frozen at restock time (so ids can't be
        recycled by the allocator)."""
        pool = BufferPool()
        held = []
        frozen = []
        loans = 0
        for op, idx in ops:
            if op == "loan":
                label = f"lane.buf{loans}"
                arr = pool.loan(_POOL_SHAPES[idx % len(_POOL_SHAPES)],
                                np.float32, label)
                # a loan must never alias a buffer that was frozen when
                # it went back to the pool
                assert all(arr is not f for f in frozen), \
                    "pool handed out a frozen buffer"
                assert arr.flags.writeable and arr.flags.c_contiguous
                held.append((arr, label))
                loans += 1
            elif op == "donate":
                pool.restock(np.empty(
                    _POOL_SHAPES[idx % len(_POOL_SHAPES)], np.float32))
            elif held:
                arr, label = held.pop(idx % len(held))
                if op == "restock":
                    pool.restock(arr)
                elif op == "freeze_restock":
                    arr.flags.writeable = False
                    frozen.append(arr)
                    pool.restock(arr)
                else:
                    pool.adopt(arr)
            # the free list is bounded per (shape, dtype) key at all times
            for key, bucket in pool._free.items():
                assert len(bucket) <= BufferPool.MAX_PER_KEY, \
                    f"free list for {key} grew to {len(bucket)}"
        return pool, held, frozen

    @given(ops=_pool_ops)
    @fast
    def test_never_alias_frozen_and_bounded_free_list(self, ops):
        pool, held, _ = self._replay(ops)
        for arr, _ in held:  # clean up so check_leaks can pass
            pool.restock(arr)
        pool.check_leaks()

    @given(ops=_pool_ops)
    @fast
    def test_check_leaks_names_every_outstanding_label(self, ops):
        pool, held, _ = self._replay(ops)
        expected = sorted(label for _, label in held)
        if not expected:
            pool.check_leaks()  # nothing outstanding: must not raise
            return
        with pytest.raises(BufferPoolLeak) as exc:
            pool.check_leaks()
        assert sorted(exc.value.labels) == expected
        pool.check_leaks()  # the report drained the outstanding state
