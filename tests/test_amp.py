"""Mixed precision: grad scaler dynamics, fp16 casting, overflow skips."""

import numpy as np
import pytest

from repro.amp import FP16Module, GradScaler, cast_model_to
from repro.cluster.device import Device, DeviceKind
from repro.config import FP16Config
from repro.nn import Linear
from repro.nn.module import Parameter
from repro.tensor import Tensor, set_default_device
from repro.utils.units import MB


def _scaler(**kw):
    defaults = dict(enabled=True, initial_scale=2.0**8, growth_interval=2)
    defaults.update(kw)
    return GradScaler(FP16Config(**defaults))


class TestGradScaler:
    def test_scale_loss(self):
        s = _scaler()
        loss = Tensor(np.array([2.0]))
        scaled = s.scale_loss(loss)
        assert scaled.numpy()[0] == 2.0 * 256

    def test_unscale_divides(self):
        s = _scaler()
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = Tensor(np.full(2, 256.0, dtype=np.float32))
        assert s.unscale_and_check([p])
        np.testing.assert_allclose(p.grad.numpy(), [1.0, 1.0])

    def test_overflow_backs_off(self):
        s = _scaler()
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = Tensor(np.array([np.inf, 1.0], dtype=np.float32))
        assert not s.unscale_and_check([p])
        assert s.scale == 128.0
        assert s.overflows == 1

    def test_nan_detected(self):
        s = _scaler()
        p = Parameter(np.zeros(1, dtype=np.float32))
        p.grad = Tensor(np.array([np.nan], dtype=np.float32))
        assert not s.unscale_and_check([p])

    def test_growth_after_interval(self):
        s = _scaler(growth_interval=2)
        p = Parameter(np.zeros(1, dtype=np.float32))
        for _ in range(2):
            p.grad = Tensor(np.ones(1, dtype=np.float32))
            s.unscale_and_check([p])
        assert s.scale == 512.0

    def test_scale_floor(self):
        s = _scaler(initial_scale=2.0, min_scale=1.0)
        p = Parameter(np.zeros(1, dtype=np.float32))
        for _ in range(5):
            p.grad = Tensor(np.array([np.inf], dtype=np.float32))
            s.unscale_and_check([p])
        assert s.scale == 1.0

    def test_spec_grads_assumed_finite(self):
        from repro.comm.payload import SpecArray

        s = _scaler()
        p = Parameter(SpecArray((4,), "float32"))
        p.grad = Tensor(SpecArray((4,), "float32"))
        assert s.unscale_and_check([p])


class TestFP16Cast:
    def setup_method(self):
        self.dev = Device("amp", DeviceKind.GPU, memory_capacity=64 * MB)
        set_default_device(self.dev)

    def teardown_method(self):
        set_default_device(None)

    def test_cast_halves_param_bytes(self):
        lin = Linear(64, 64)
        before = self.dev.memory.breakdown()["param"]
        cast_model_to(lin, "float16")
        after = self.dev.memory.breakdown()["param"]
        assert after == before // 2
        assert lin.weight.dtype == np.float16

    def test_cast_preserves_values(self):
        lin = Linear(4, 4, rng=np.random.default_rng(0))
        w = lin.weight.numpy().copy()
        cast_model_to(lin, "float16")
        np.testing.assert_allclose(lin.weight.numpy(), w, atol=1e-2)

    def test_cast_idempotent(self):
        lin = Linear(4, 4)
        cast_model_to(lin, "float16")
        bytes_once = self.dev.memory.breakdown()["param"]
        cast_model_to(lin, "float16")
        assert self.dev.memory.breakdown()["param"] == bytes_once

    def test_fp16_module_wraps_io(self):
        lin = Linear(4, 4, rng=np.random.default_rng(0))
        wrapped = FP16Module(lin)
        out = wrapped(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.dtype == np.float32
        assert lin.weight.dtype == np.float16
