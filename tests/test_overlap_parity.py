"""Differential parity for comm/compute overlap (ISSUE 5).

Overlap is a pure *scheduling* change: nonblocking collectives on a
per-rank comm stream must leave every numeric bitwise identical to the
blocking schedule — same losses, same parameters, same wire bytes — while
simulated step time only ever improves.  The tests here run each hot path
(DDP bucket flushing, ZeRO prefetch + async reduce-scatter, pipeline
stream sends) twice, overlap off and on, and diff the runs.

Also here: hypothesis properties of the gradient bucketizer, spec-mode
byte parity for non-materialized gradient buckets, and the overlap x
fault-injection composition (``-m "overlap and chaos"``).
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.autograd import ops
from repro.cluster import uniform_cluster
from repro.comm import Communicator, SpecArray
from repro.comm.cost import CostModel
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.faults import FaultPlan
from repro.nn import CrossEntropyLoss, Linear, Module
from repro.nn.module import Parameter
from repro.parallel.data import DistributedDataParallel, _bucketize, sync_gradients
from repro.parallel.pipeline import GPipeSchedule, OneFOneBSchedule, partition_uniform
from repro.runtime import RemoteRankError, SpmdRuntime
from repro.tensor import Tensor
from repro.zero import ZeroOffloadEngine
from repro.zero.policies import NoOffloadPolicy

pytestmark = pytest.mark.overlap

H, C, B = 16, 4, 8
LR = 0.05


def _pc(ctx):
    return ParallelContext(ctx, Config.from_dict({}))


class _MLP(Module):
    def __init__(self):
        super().__init__()
        self.l1 = Linear(H, 32, rng=np.random.default_rng(11))
        self.l2 = Linear(32, 32, rng=np.random.default_rng(12))
        self.l3 = Linear(32, C, rng=np.random.default_rng(13))

    def forward(self, x):
        return self.l3(ops.gelu(self.l2(ops.gelu(self.l1(x)))))


def _batch(step):
    rng = np.random.default_rng((7, step))
    X = rng.standard_normal((2 * B, H)).astype(np.float32)
    Y = rng.integers(0, C, 2 * B)
    return X, Y


# -- DDP -------------------------------------------------------------------


def _train_ddp(overlap, world=4, steps=2, fault_plan=None, fault_seed=0):
    plan = None
    if fault_plan is not None:
        plan = fault_plan(fault_seed)
    rt = SpmdRuntime(uniform_cluster(world), comm_overlap=overlap, fault_plan=plan)
    crit = CrossEntropyLoss()

    def prog(ctx):
        pc = _pc(ctx)
        model = _MLP()
        # ~2 KiB buckets: the three layers split across several buckets so
        # early buckets flush while later layers' backward still computes
        ddp = DistributedDataParallel(model, pc, bucket_mb=0.002, overlap=overlap)
        losses = []
        for s in range(steps):
            X, Y = _batch(s)
            n = X.shape[0] // pc.data_size
            xl = X[ctx.rank * n : (ctx.rank + 1) * n]
            yl = Y[ctx.rank * n : (ctx.rank + 1) * n]
            loss = crit(ddp(Tensor(xl.copy())), yl)
            loss.backward()
            ddp.sync()
            for p in model.parameters():
                p.payload[...] = p.payload - LR * p.grad.payload
                p.grad = None
            losses.append(loss.item())
        return losses, [p.numpy().copy() for p in model.parameters()]

    results = rt.run(prog)
    counters = rt.group(tuple(range(world))).counters
    return results, counters, rt.max_time()


class TestDDPOverlapParity:
    def test_bitwise_parity_and_speedup(self):
        res_off, cnt_off, t_off = _train_ddp(overlap=False)
        res_on, cnt_on, t_on = _train_ddp(overlap=True)
        for (losses_off, params_off), (losses_on, params_on) in zip(res_off, res_on):
            assert losses_on == losses_off  # bitwise: floats compared exact
            for a, b in zip(params_off, params_on):
                np.testing.assert_array_equal(a, b)
        # identical traffic: bucket composition differs (reversed layout)
        # but wire bytes are linear in payload bytes
        assert cnt_on.bytes_total == cnt_off.bytes_total
        assert cnt_on.by_op_bytes == cnt_off.by_op_bytes
        # overlap never slows a step down, and with multiple buckets the
        # early flushes hide behind remaining backward -> strictly faster
        assert t_on < t_off
        # the hidden time is visible in the counters
        assert cnt_on.overlapped_seconds_total > 0.0
        assert cnt_off.overlapped_seconds_total == 0.0

    def test_overlap_time_non_increasing_single_bucket(self):
        """Even with one giant bucket (flushes at the very end of backward,
        nothing left to hide behind) overlap must not cost time."""

        def run(overlap):
            rt = SpmdRuntime(uniform_cluster(2), comm_overlap=overlap)
            crit = CrossEntropyLoss()

            def prog(ctx):
                pc = _pc(ctx)
                model = _MLP()
                ddp = DistributedDataParallel(
                    model, pc, bucket_mb=25.0, overlap=overlap
                )
                X, Y = _batch(0)
                loss = crit(ddp(Tensor(X[:B].copy())), Y[:B])
                loss.backward()
                ddp.sync()
                return model.l1.weight.grad.numpy().copy()

            res = rt.run(prog)
            return res, rt.max_time()

        res_off, t_off = run(False)
        res_on, t_on = run(True)
        np.testing.assert_array_equal(res_on[0], res_off[0])
        assert t_on <= t_off + 1e-12

    def test_double_grad_accumulation_raises(self):
        """A parameter reused in the graph accumulates twice per backward;
        overlap must refuse loudly instead of desyncing the buckets."""

        def prog(ctx):
            pc = _pc(ctx)
            model = Linear(H, H, rng=np.random.default_rng(1))
            ddp = DistributedDataParallel(model, pc, overlap=True)
            x = Tensor(np.ones((2, H), dtype=np.float32))
            out = ops.add(ddp(x), ddp(x))  # weight used twice
            out.backward(Tensor(np.ones((2, H), dtype=np.float32)))

        rt = SpmdRuntime(uniform_cluster(2), comm_overlap=True)
        with pytest.raises(RemoteRankError, match="twice"):
            rt.run(prog)

    def test_mixed_blocking_nonblocking_round_rejected(self):
        """Handle completion defines the rendezvous; a group where one rank
        calls blocking and another nonblocking is a program bug and must
        fail the round for everyone."""

        def prog(ctx):
            c = Communicator.world(ctx)
            x = np.ones(4, dtype=np.float32)
            if ctx.rank == 0:
                return c.all_reduce(x)
            return c.iallreduce(x).wait()

        rt = SpmdRuntime(uniform_cluster(2), comm_overlap=True)
        with pytest.raises(RemoteRankError, match="mixes blocking and nonblocking"):
            rt.run(prog)


# -- ZeRO ------------------------------------------------------------------


def _zero_blocks():
    class Block(Module):
        def __init__(self, seed, out=H):
            super().__init__()
            self.lin = Linear(H, out, rng=np.random.default_rng(seed))

        def forward(self, x):
            y = self.lin(x)
            return ops.gelu(y) if self.lin.out_features == H else y

    return [Block(21), Block(22), Block(23, out=C)]


def _train_zero(overlap, world=2, steps=2):
    rt = SpmdRuntime(uniform_cluster(world), comm_overlap=overlap)
    crit = CrossEntropyLoss()

    def prog(ctx):
        comm = Communicator.world(ctx)
        blocks = _zero_blocks()
        pol = NoOffloadPolicy(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank)
        eng = ZeroOffloadEngine(
            ctx, blocks, comm, pol, criterion=crit,
            chunk_mb=0.001, lr=1e-2, param_dtype="float32", overlap=overlap,
        )
        losses = []
        for s in range(steps):
            X, Y = _batch(s)
            n = X.shape[0] // world
            losses.append(
                eng.train_step(X[ctx.rank * n : (ctx.rank + 1) * n],
                               Y[ctx.rank * n : (ctx.rank + 1) * n])
            )
        eng.gather_parameters()
        return losses, [b.lin.weight.numpy().copy() for b in blocks]

    results = rt.run(prog)
    counters = rt.group(tuple(range(world))).counters
    return results, counters, rt.max_time()


class TestZeroOverlapParity:
    def test_bitwise_parity_and_traffic(self):
        res_off, cnt_off, t_off = _train_zero(overlap=False)
        res_on, cnt_on, t_on = _train_zero(overlap=True)
        for (losses_off, ws_off), (losses_on, ws_on) in zip(res_off, res_on):
            assert losses_on == losses_off
            for a, b in zip(ws_off, ws_on):
                np.testing.assert_array_equal(a, b)
        # prefetch/async reduce-scatter move the same bytes, just earlier
        assert cnt_on.bytes_total == cnt_off.bytes_total
        assert cnt_on.by_op_bytes == cnt_off.by_op_bytes
        assert cnt_on.calls_total == cnt_off.calls_total
        assert t_on <= t_off + 1e-12
        assert cnt_on.overlapped_seconds_total > 0.0


# -- pipeline --------------------------------------------------------------


def _run_pipeline(sched_cls, overlap, stages=2, microbatches=4):
    rt = SpmdRuntime(uniform_cluster(stages), comm_overlap=overlap)
    crit = CrossEntropyLoss()
    X, Y = _batch(0)

    class Stage(Module):
        def __init__(self, idxs, with_tail):
            super().__init__()
            self.layers = [Linear(H, H, rng=np.random.default_rng((31, i)))
                           for i in idxs]
            for i, l in enumerate(self.layers):
                setattr(self, f"lin{i}", l)
            self.head = (
                Linear(H, C, rng=np.random.default_rng(35)) if with_tail else None
            )

        def forward(self, x):
            for l in self.layers:
                x = ops.gelu(l(x))
            return self.head(x) if self.head is not None else x

    def prog(ctx):
        pc = ParallelContext(
            ctx,
            Config.from_dict(
                dict(parallel=dict(pipeline=stages), num_microbatches=microbatches)
            ),
        )
        s, e = partition_uniform(4, stages)[pc.pp_rank]
        stage = Stage(range(s, e), with_tail=pc.is_last_pipeline_stage())
        sched = sched_cls(pc, microbatches)
        loss = sched.run(
            stage,
            X.copy() if pc.is_first_pipeline_stage() else None,
            Y if pc.is_last_pipeline_stage() else None,
            crit,
        )
        g = stage.layers[0].weight.grad.numpy().copy()
        return loss, g

    results = rt.run(prog)
    return results, rt.max_time()


class TestPipelineOverlapParity:
    @pytest.mark.parametrize("sched_cls", [GPipeSchedule, OneFOneBSchedule])
    def test_bitwise_parity_and_time(self, sched_cls):
        res_off, t_off = _run_pipeline(sched_cls, overlap=False)
        res_on, t_on = _run_pipeline(sched_cls, overlap=True)
        for (loss_off, g_off), (loss_on, g_on) in zip(res_off, res_on):
            assert loss_on == loss_off
            np.testing.assert_array_equal(g_on, g_off)
        # stream isend frees the sender immediately; makespan can only drop
        assert t_on <= t_off + 1e-12


# -- overlap x fault injection ---------------------------------------------


@pytest.mark.chaos
class TestOverlapUnderFaults:
    def test_ddp_overlap_heals_glitches_bitwise(self, fault_seed):
        """Transient collective glitches retry on the comm stream; the
        healed overlap run matches the fault-free one bitwise and the
        retries surface in the counters and the simulated time."""
        res_clean, cnt_clean, t_clean = _train_ddp(overlap=True)
        res_faulty, cnt_faulty, t_faulty = _train_ddp(
            overlap=True,
            fault_plan=lambda s: FaultPlan(seed=s).glitch(op="all_reduce", attempts=2),
            fault_seed=fault_seed,
        )
        for (losses_c, params_c), (losses_f, params_f) in zip(res_clean, res_faulty):
            assert losses_f == losses_c
            for a, b in zip(params_c, params_f):
                np.testing.assert_array_equal(a, b)
        assert cnt_faulty.retries_total > 0
        assert t_faulty > t_clean
        # retransmitted bytes really cross the wire
        assert cnt_faulty.bytes_total > cnt_clean.bytes_total


# -- engine / config wiring ------------------------------------------------


class TestEngineOverlapWiring:
    def test_initialize_auto_wraps_and_matches_blocking(self):
        from repro.engine import initialize
        from repro.engine.initialize import launch
        from repro.optim import Adam

        def run(overlap):
            crit = CrossEntropyLoss()

            def fn(ctx, pc):
                model = _MLP()
                opt = Adam(model.parameters(), lr=1e-2)
                engine = initialize(model, opt, crit, pc=pc)
                if overlap:
                    assert isinstance(engine.model, DistributedDataParallel)
                    assert engine.model.overlap
                else:
                    assert not isinstance(engine.model, DistributedDataParallel)
                losses = []
                for s in range(2):
                    X, Y = _batch(s)
                    n = X.shape[0] // pc.data_size
                    xl = X[ctx.rank * n : (ctx.rank + 1) * n]
                    yl = Y[ctx.rank * n : (ctx.rank + 1) * n]
                    engine.zero_grad()
                    loss = engine.criterion(engine(Tensor(xl.copy())), yl)
                    engine.backward(loss)
                    engine.step()
                    losses.append(loss.item())
                return losses, [p.numpy().copy() for p in model.parameters()]

            return launch(
                dict(comm=dict(overlap=overlap)), uniform_cluster(2), fn,
                world_size=2,
            )

        res_off = run(False)
        res_on = run(True)
        for (losses_off, params_off), (losses_on, params_on) in zip(res_off, res_on):
            assert losses_on == losses_off
            for a, b in zip(params_off, params_on):
                np.testing.assert_array_equal(a, b)

    def test_gradient_accumulation_rejects_overlap(self):
        from repro.engine import initialize
        from repro.engine.initialize import launch
        from repro.optim import Adam

        def fn(ctx, pc):
            model = _MLP()
            engine = initialize(
                model, Adam(model.parameters(), lr=1e-2), CrossEntropyLoss(), pc=pc
            )
            engine.gradient_accumulation = 2
            X, Y = _batch(0)
            loss = engine.criterion(engine(Tensor(X[:B].copy())), Y[:B])
            engine.backward(loss)

        with pytest.raises(RemoteRankError, match="overlap=False"):
            launch(
                dict(comm=dict(overlap=True)), uniform_cluster(2), fn, world_size=2
            )


# -- spec-mode byte parity (non-materialized gradient buckets) -------------


class TestSpecModeBucketBytes:
    def _bytes_for(self, materialized, overlap):
        rt = SpmdRuntime(uniform_cluster(2), comm_overlap=overlap)

        def prog(ctx):
            pc = _pc(ctx)
            params = []
            for i in range(6):
                if materialized:
                    p = Parameter(np.ones(1000, dtype=np.float32))
                    p.grad = Tensor(np.ones(1000, dtype=np.float32))
                else:
                    p = Parameter(SpecArray((1000,), "float32"))
                    p.grad = Tensor(SpecArray((1000,), "float32"))
                params.append(p)
            if overlap:
                model = Module()
                for i, p in enumerate(params):
                    setattr(model, f"p{i}", p)
                ddp = DistributedDataParallel(
                    model, pc, bucket_mb=0.003, overlap=True
                )
                for bi in range(len(ddp._buckets)):
                    ddp._flush_bucket(bi)
                ddp._flushed = [True] * len(ddp._buckets)
                ddp.sync()
            else:
                sync_gradients(params, pc.comm(ParallelMode.DATA), bucket_mb=0.003)
            return True

        rt.run(prog, materialize=materialized)
        cnt = rt.group((0, 1)).counters
        return cnt.bytes_total, dict(cnt.by_op_bytes)

    def test_spec_grads_charge_same_bytes_blocking(self):
        """The non-materialized bucket path must price exactly like the
        materialized one: same total, same per-op split."""
        real = self._bytes_for(materialized=True, overlap=False)
        spec = self._bytes_for(materialized=False, overlap=False)
        assert spec == real
        assert real[0] > 0

    def test_spec_grads_charge_same_bytes_overlap(self):
        real = self._bytes_for(materialized=True, overlap=True)
        spec = self._bytes_for(materialized=False, overlap=True)
        assert spec == real
        assert real[0] > 0

    def test_overlap_and_blocking_bytes_agree_in_spec_mode(self):
        blocking = self._bytes_for(materialized=False, overlap=False)
        stream = self._bytes_for(materialized=False, overlap=True)
        assert stream[0] == blocking[0]


# -- bucketizer properties -------------------------------------------------

fast = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_sizes = st.lists(st.integers(1, 4096), min_size=0, max_size=40)
_caps = st.integers(8, 2048)


class TestBucketizeProperties:
    @given(sizes=_sizes, cap=_caps)
    @fast
    def test_partition_preserves_order(self, sizes, cap):
        """Every param lands in exactly one bucket; concatenating the
        buckets reproduces the input order; no bucket is empty."""
        params = [SimpleNamespace(nbytes=n, i=i) for i, n in enumerate(sizes)]
        buckets = _bucketize(params, cap)
        flat = [p for b in buckets for p in b]
        assert [p.i for p in flat] == list(range(len(params)))
        assert all(b for b in buckets)

    @given(sizes=_sizes, cap=_caps)
    @fast
    def test_byte_cap_rule(self, sizes, cap):
        """A bucket only exceeds the cap through its *last* member: the sum
        of all but the last param is always under the cap."""
        params = [SimpleNamespace(nbytes=n) for n in sizes]
        for bucket in _bucketize(params, cap):
            assert sum(p.nbytes for p in bucket[:-1]) < cap

    @given(sizes=_sizes, cap=_caps)
    @fast
    def test_oversized_param_isolated(self, sizes, cap):
        """A param at/over the cap sits alone — it must not drag previously
        accumulated small params past the cap with it (the latent bug this
        PR fixed)."""
        params = [SimpleNamespace(nbytes=n) for n in sizes]
        for bucket in _bucketize(params, cap):
            for p in bucket:
                if p.nbytes >= cap:
                    assert bucket == [p]

    def test_oversized_flushes_accumulated_first(self):
        """Regression: [small, small, huge] must yield [[s, s], [huge]],
        not [[s, s, huge]]."""
        s1, s2 = SimpleNamespace(nbytes=10), SimpleNamespace(nbytes=10)
        huge = SimpleNamespace(nbytes=500)
        assert _bucketize([s1, s2, huge], 100) == [[s1, s2], [huge]]
        assert _bucketize([huge, s1, s2], 100) == [[huge], [s1, s2]]
