"""Model zoo: cross-mode parity of ViT and BERT bundles, GPT configs."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.engine import initialize, launch
from repro.models import (
    BertConfig,
    GPTConfig,
    ViTConfig,
    build_bert,
    build_gpt_blocks,
    build_vit,
    gpt2_10b,
    opt_13b,
)
from repro.nn import CrossEntropyLoss
from repro.optim import AdamW
from repro.tensor import Tensor

VIT_CFG = ViTConfig(
    image_size=8, patch_size=2, in_channels=3, hidden_size=16,
    n_layers=2, n_heads=4, n_classes=4, mlp_ratio=2, seed=11,
)
RNG = np.random.default_rng(0)
X_IMG = RNG.standard_normal((8, 8, 8, 3)).astype(np.float32)
Y_IMG = RNG.integers(0, 4, 8)


@pytest.fixture(scope="module")
def vit_serial_ref():
    bundle = build_vit(VIT_CFG, mode="serial")
    opt = AdamW(bundle.model.parameters(), lr=1e-2, weight_decay=0.0)
    out = bundle.model(Tensor(X_IMG.copy()))
    loss0 = bundle.loss_fn(out, Y_IMG)
    loss0.backward()
    opt.step()
    opt.zero_grad()
    loss1 = bundle.loss_fn(bundle.model(Tensor(X_IMG.copy())), Y_IMG)
    return {"logits": out.numpy().copy(), "loss0": loss0.item(), "loss1": loss1.item()}


def _vit_prog(mode):
    def prog(ctx, pc):
        bundle = build_vit(VIT_CFG, pc, mode=mode)
        eng = initialize(
            bundle.model,
            AdamW(bundle.model.parameters(), lr=1e-2, weight_decay=0.0),
            None, pc=pc,
        )
        x = bundle.shard_input(X_IMG.copy())
        y = bundle.shard_target(Y_IMG.copy())
        out = eng(Tensor(x) if isinstance(x, np.ndarray) else x)
        logits = bundle.gather_output(out)
        loss0 = bundle.loss_fn(out, y)
        eng.backward(loss0)
        eng.step()
        out2 = eng(Tensor(bundle.shard_input(X_IMG.copy())))
        loss1 = bundle.loss_fn(out2, bundle.shard_target(Y_IMG.copy()))
        return loss0.item(), loss1.item(), np.asarray(logits)

    return prog


class TestViTCrossModeParity:
    """The Fig 7 foundation: every TP mode computes the same losses as the
    serial model, before AND after an AdamW step."""

    @pytest.mark.parametrize(
        "mode,world,cdict",
        [
            ("1d", 4, dict(parallel=dict(tensor=dict(size=4, mode="1d")))),
            ("2d", 4, dict(parallel=dict(tensor=dict(size=4, mode="2d")))),
            ("2.5d", 8, dict(parallel=dict(tensor=dict(size=8, mode="2.5d", depth=2)))),
            ("3d", 8, dict(parallel=dict(tensor=dict(size=8, mode="3d")))),
        ],
    )
    def test_tp_mode_parity(self, vit_serial_ref, mode, world, cdict):
        res = launch(cdict, uniform_cluster(world), _vit_prog(mode))
        for l0, l1, logits in res:
            assert l0 == pytest.approx(vit_serial_ref["loss0"], abs=1e-4)
            assert l1 == pytest.approx(vit_serial_ref["loss1"], abs=5e-4)
            np.testing.assert_allclose(logits, vit_serial_ref["logits"], atol=1e-4)

    def test_data_parallel_parity(self, vit_serial_ref):
        """DP: local losses differ but their mean and the post-step loss
        match the serial full batch."""
        res = launch({}, uniform_cluster(4), _vit_prog("data"))
        local_losses = [r[0] for r in res]
        assert np.mean(local_losses) == pytest.approx(vit_serial_ref["loss0"], abs=1e-4)
        after = [r[1] for r in res]
        assert np.mean(after) == pytest.approx(vit_serial_ref["loss1"], abs=5e-4)
        # gathered logits reassemble the full batch identically
        np.testing.assert_allclose(res[0][2], vit_serial_ref["logits"], atol=1e-4)

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            build_vit(VIT_CFG, None, mode="5d")
        with pytest.raises(ValueError):
            build_vit(VIT_CFG, None, mode="2d")  # needs a context


BERT_CFG = BertConfig(
    vocab_size=32, hidden_size=16, n_layers=2, n_heads=4, seq_len=8,
    mlp_ratio=2, seed=13,
)
IDS = np.random.default_rng(1).integers(0, 32, (4, 8))
TARGETS = np.random.default_rng(2).integers(0, 32, (4, 8))


@pytest.fixture(scope="module")
def bert_serial_ref():
    bundle = build_bert(BERT_CFG, mode="serial")
    out = bundle.model(IDS)
    loss = bundle.loss_fn(out, TARGETS)
    loss.backward()
    return {
        "logits": out.numpy().copy(),
        "loss": loss.item(),
        "head_grad": bundle.model.head.weight.grad.numpy().copy(),
    }


class TestBertParity:
    def test_1d_parity(self, bert_serial_ref):
        def prog(ctx, pc):
            bundle = build_bert(BERT_CFG, pc, mode="1d")
            out = bundle.model(IDS)
            loss = bundle.loss_fn(out, TARGETS)
            loss.backward()
            return loss.item(), out.numpy()

        cfg = dict(parallel=dict(tensor=dict(size=4, mode="1d")))
        for loss, logits in launch(cfg, uniform_cluster(4), prog):
            assert loss == pytest.approx(bert_serial_ref["loss"], abs=1e-4)
            np.testing.assert_allclose(logits, bert_serial_ref["logits"], atol=1e-3)

    def test_sequence_parity(self, bert_serial_ref):
        from repro.parallel.common import sync_parameter_gradients

        def prog(ctx, pc):
            bundle = build_bert(BERT_CFG, pc, mode="sequence")
            ids_l = bundle.shard_input(IDS)
            tg_l = bundle.shard_target(TARGETS)
            out = bundle.model(ids_l)
            loss = bundle.loss_fn(out, tg_l)
            loss.backward()
            sync_parameter_gradients(bundle.model)
            return (
                loss.item(),
                np.asarray(bundle.gather_output(out)),
                bundle.model.head.weight.grad.numpy(),
            )

        cfg = dict(parallel=dict(tensor=dict(size=4, mode="sequence")))
        for loss, logits, head_g in launch(cfg, uniform_cluster(4), prog):
            assert loss == pytest.approx(bert_serial_ref["loss"], abs=1e-4)
            np.testing.assert_allclose(logits, bert_serial_ref["logits"], atol=1e-3)
            np.testing.assert_allclose(head_g, bert_serial_ref["head_grad"], atol=1e-4)

    def test_1d_vocab_parallel_loss_parity(self, bert_serial_ref):
        """The gather-free vocab-parallel CE must equal the gathered
        version (and the serial loss)."""

        def prog(ctx, pc):
            bundle = build_bert(BERT_CFG, pc, mode="1d", vocab_parallel_loss=True)
            out = bundle.model(IDS)
            loss = bundle.loss_fn(out, TARGETS)
            loss.backward()
            return loss.item(), out.shape

        cfg = dict(parallel=dict(tensor=dict(size=4, mode="1d")))
        for loss, shape in launch(cfg, uniform_cluster(4), prog):
            assert loss == pytest.approx(bert_serial_ref["loss"], abs=1e-4)
            assert shape == (4, 8, 8)  # logits stay vocab-sharded (32/4)

    def test_sp_no_head_constraint(self):
        """SP runs with 8 ranks even though BERT-CFG has 4 heads (1D TP
        could not) — the §5.3 advantage."""
        cfg = dict(parallel=dict(tensor=dict(size=8, mode="sequence")))

        def prog(ctx, pc):
            bundle = build_bert(BERT_CFG, pc, mode="sequence")
            out = bundle.model(bundle.shard_input(IDS))
            return out.shape

        shapes = launch(cfg, uniform_cluster(8), prog)
        assert shapes[0] == (4, 1, 32)


class TestGPT:
    def test_param_count_rule(self):
        cfg = GPTConfig(vocab_size=100, hidden_size=64, n_layers=2, n_heads=4, seq_len=16)
        blocks, _ = build_gpt_blocks(cfg)
        actual = sum(b.num_parameters() for b in blocks)
        assert actual == pytest.approx(cfg.param_count(), rel=0.02)

    def test_presets_scale(self):
        assert 10e9 < gpt2_10b().param_count() < 11e9
        assert 12.5e9 < opt_13b().param_count() < 13.5e9

    def test_blocks_forward_chain(self):
        cfg = GPTConfig(vocab_size=50, hidden_size=16, n_layers=2, n_heads=2, seq_len=8)
        blocks, crit = build_gpt_blocks(cfg)
        ids = np.random.default_rng(0).integers(0, 50, (2, 8))
        x = Tensor(ids)
        for b in blocks:
            x = b(x)
        assert x.shape == (2, 8, 50)
        loss = crit(x, np.random.default_rng(1).integers(0, 50, (2, 8)))
        assert np.isfinite(loss.item())

    def test_causality(self):
        """GPT logits at position t must not depend on tokens after t."""
        cfg = GPTConfig(vocab_size=50, hidden_size=16, n_layers=2, n_heads=2, seq_len=8)
        blocks, _ = build_gpt_blocks(cfg)

        def logits_for(ids):
            x = Tensor(ids)
            for b in blocks:
                x = b(x)
            return x.numpy()

        ids = np.random.default_rng(0).integers(0, 50, (1, 8))
        base = logits_for(ids)
        ids2 = ids.copy()
        ids2[0, 7] = (ids2[0, 7] + 1) % 50
        pert = logits_for(ids2)
        np.testing.assert_allclose(pert[0, :7], base[0, :7], atol=1e-5)
