"""Property-based tests (hypothesis) on core data structures and
invariants: payload shape algebra, sharding roundtrips, collective
semantics vs numpy references, partitioning, memory-pool accounting."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.device import MemoryPool
from repro.comm.payload import SpecArray
from repro.parallel.pipeline.partition import partition_balanced, partition_uniform
from repro.tensor.sharding import ShardSpec
from repro.zero.sharded_tensor import FlatShardingStrategy

# SPMD tests spawn threads; keep examples modest
fast = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

shapes = st.lists(st.integers(1, 6), min_size=1, max_size=4).map(tuple)


class TestSpecArrayProperties:
    @given(shape=shapes)
    @fast
    def test_size_and_nbytes_consistent(self, shape):
        s = SpecArray(shape, "float32")
        assert s.size == int(np.prod(shape))
        assert s.nbytes == s.size * 4

    @given(shape=shapes)
    @fast
    def test_reshape_preserves_size(self, shape):
        s = SpecArray(shape)
        flat = s.reshape(-1)
        assert flat.shape == (s.size,)
        back = flat.reshape(shape)
        assert back.shape == shape

    @given(shape=shapes, data=st.data())
    @fast
    def test_reshape_matches_numpy(self, shape, data):
        s = SpecArray(shape)
        arr = np.zeros(shape)
        target = data.draw(st.sampled_from([(-1,), (s.size,), shape]))
        assert s.reshape(*target).shape == arr.reshape(*target).shape

    @given(shape=shapes)
    @fast
    def test_invalid_reshape_rejected(self, shape):
        s = SpecArray(shape)
        with pytest.raises(ValueError):
            s.reshape(s.size + 1)


class TestShardingProperties:
    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        p0=st.sampled_from([1, 2, 4]),
        p1=st.sampled_from([1, 2, 4]),
    )
    @fast
    def test_chunks_partition_exactly(self, rows, cols, p0, p1):
        shape = (rows * p0, cols * p1)
        x = np.arange(np.prod(shape)).reshape(shape)
        spec = ShardSpec(shape, {0: p0, 1: p1})
        seen = np.zeros(shape, dtype=bool)
        total = 0
        for i in range(p0):
            for j in range(p1):
                c = spec.chunk(x, {0: i, 1: j})
                assert c.shape == spec.local_shape
                total += c.size
                # every element recovered exactly once
                r0 = i * (shape[0] // p0)
                c0 = j * (shape[1] // p1)
                seen[r0 : r0 + c.shape[0], c0 : c0 + c.shape[1]] |= True
        assert total == x.size
        assert seen.all()

    @given(n=st.integers(1, 100), world=st.sampled_from([1, 2, 3, 4, 8]))
    @fast
    def test_flat_strategy_shard_sizes(self, n, world):
        strat = FlatShardingStrategy()
        per = strat.shard_elements((n,), world)
        assert per * world >= n
        assert per * world - n < world  # minimal padding


class TestPartitionProperties:
    @given(
        costs=st.lists(st.floats(0.1, 100.0), min_size=2, max_size=24),
        data=st.data(),
    )
    @fast
    def test_balanced_is_valid_partition(self, costs, data):
        n_stages = data.draw(st.integers(1, len(costs)))
        ranges = partition_balanced(costs, n_stages)
        assert len(ranges) == n_stages
        assert ranges[0][0] == 0 and ranges[-1][1] == len(costs)
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
            assert d > c
        assert all(e > s for s, e in ranges)

    @given(
        costs=st.lists(st.floats(0.5, 10.0), min_size=4, max_size=16),
        data=st.data(),
    )
    @fast
    def test_balanced_never_worse_than_uniform(self, costs, data):
        n_stages = data.draw(st.integers(2, min(4, len(costs))))

        def max_load(ranges):
            return max(sum(costs[s:e]) for s, e in ranges)

        bal = max_load(partition_balanced(costs, n_stages))
        uni = max_load(partition_uniform(len(costs), n_stages))
        assert bal <= uni + 1e-9


class TestMemoryPoolProperties:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 1000)),
            max_size=40,
        )
    )
    @fast
    def test_accounting_invariants(self, ops):
        pool = MemoryPool(10_000)
        live = []
        for kind, size in ops:
            if kind == "alloc":
                try:
                    pool.alloc(size)
                    live.append(size)
                except MemoryError:
                    assert sum(live) + size > 10_000
            elif live:
                sz = live.pop()
                pool.free_bytes(sz)
            assert pool.allocated == sum(live)
            assert 0 <= pool.allocated <= pool.capacity
            assert pool.peak >= pool.allocated


class TestCollectiveProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.sampled_from([1, 3, 8]),
        world=st.sampled_from([2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_allreduce_equals_numpy_sum(self, seed, n, world):
        from conftest import run_spmd

        rng = np.random.default_rng(seed)
        data = rng.standard_normal((world, n)).astype(np.float32)

        def prog(ctx):
            from repro.comm import Communicator

            comm = Communicator.world(ctx)
            return comm.all_reduce(data[ctx.rank].copy())

        expect = data.sum(axis=0)
        for out in run_spmd(world, prog):
            np.testing.assert_allclose(out, expect, atol=1e-5)

    @given(seed=st.integers(0, 2**16), world=st.sampled_from([2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_reduce_scatter_then_allgather_is_allreduce(self, seed, world):
        from conftest import run_spmd

        rng = np.random.default_rng(seed)
        data = rng.standard_normal((world, world * 3)).astype(np.float32)

        def prog(ctx):
            from repro.comm import Communicator

            comm = Communicator.world(ctx)
            shard = comm.reduce_scatter(data[ctx.rank].copy())
            return comm.all_gather(shard)

        expect = data.sum(axis=0)
        for out in run_spmd(world, prog):
            np.testing.assert_allclose(out, expect, atol=1e-5)


class TestAutogradProperties:
    @given(
        seed=st.integers(0, 2**16),
        m=st.integers(1, 5),
        k=st.integers(1, 5),
        n=st.integers(1, 5),
    )
    @fast
    def test_matmul_grad_identity(self, seed, m, k, n):
        """d(sum(AB))/dA == ones @ B^T for any shapes."""
        from repro.autograd import ops
        from repro.tensor import Tensor

        rng = np.random.default_rng(seed)
        A = Tensor(rng.standard_normal((m, k)), requires_grad=True)
        B = Tensor(rng.standard_normal((k, n)), requires_grad=True)
        ops.matmul(A, B).sum().backward()
        np.testing.assert_allclose(
            A.grad.numpy(), np.ones((m, n)) @ B.numpy().T, atol=1e-8
        )
        np.testing.assert_allclose(
            B.grad.numpy(), A.numpy().T @ np.ones((m, n)), atol=1e-8
        )

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 16))
    @fast
    def test_softmax_rows_sum_to_one(self, seed, n):
        from repro.autograd import ops
        from repro.tensor import Tensor

        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((3, n)) * 5)
        out = ops.softmax(x, axis=-1).numpy()
        np.testing.assert_allclose(out.sum(-1), 1.0, atol=1e-6)
        assert (out >= 0).all()

    @given(seed=st.integers(0, 2**16))
    @fast
    def test_layernorm_grad_orthogonal_to_ones(self, seed):
        """LayerNorm output is mean-invariant, so dL/dx must be orthogonal
        to the all-ones direction (row sums ~ 0) when gamma=1."""
        from repro.autograd import ops
        from repro.tensor import Tensor

        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((2, 8)), requires_grad=True)
        g = Tensor(np.ones(8))
        b = Tensor(np.zeros(8))
        out = ops.layer_norm(x, g, b)
        out.backward(Tensor(rng.standard_normal((2, 8))))
        np.testing.assert_allclose(x.grad.numpy().sum(-1), 0.0, atol=1e-5)
