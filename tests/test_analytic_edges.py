"""Edge cases of the analytic layer (``repro.analytic``).

The projection mode leans on these closed forms at every projected scale
(the Table-1 hypothesis property in ``test_projection_parity``), so the
degenerate inputs — zero-size payloads, world size 1, non-power-of-two
rank counts — must be well-defined rather than accidental: volumes go to
zero, comm times go to zero, and topology-constrained modes either raise
(direct call) or yield NaN rows (table form), never crash or go negative.
"""

import math

import pytest

from repro.analytic.commvolume import (
    comm_volume_1d,
    comm_volume_2d,
    comm_volume_25d,
    comm_volume_3d,
    comm_volume_table,
)
from repro.analytic.perf_model import (
    data_parallel_step_comm_time,
    training_flops_per_token,
    transformer_layer_flops,
)
from repro.cluster import system_ii, uniform_cluster
from repro.comm.cost import CostModel


class TestCommVolumeEdges:
    def test_world_size_one_moves_nothing(self):
        assert comm_volume_1d(1, 4, 8, 16) == 0
        assert comm_volume_2d(1, 4, 8, 16) == 0
        assert comm_volume_25d(1, 4, 8, 16, d=1) == 0
        assert comm_volume_3d(1, 4, 8, 16) == 0
        assert comm_volume_3d(1, 4, 8, 16, total=True) == 0

    def test_zero_size_activations(self):
        # b = 0: no activation elements, so S_X-proportional terms vanish
        assert comm_volume_1d(4, 0, 8, 16) == 0
        # 2d still moves the weight shards (S_W = h^2)
        assert comm_volume_2d(4, 0, 8, 16) == 3 * (2 - 1) * 16 * 16

    @pytest.mark.parametrize("p", [2, 3, 5, 6, 7, 8, 12])
    def test_2d_rejects_non_square(self, p):
        with pytest.raises(ValueError, match="square"):
            comm_volume_2d(p, 4, 8, 16)

    @pytest.mark.parametrize("p,d", [(6, 2), (8, 3), (12, 2)])
    def test_25d_rejects_bad_factorization(self, p, d):
        with pytest.raises(ValueError):
            comm_volume_25d(p, 4, 8, 16, d)

    @pytest.mark.parametrize("p", [2, 4, 6, 9, 10, 16, 100])
    def test_3d_rejects_non_cube(self, p):
        with pytest.raises(ValueError, match="cubic"):
            comm_volume_3d(p, 4, 8, 16)

    def test_table_marks_unmet_constraints_nan(self):
        rows = comm_volume_table([6], b=4, s=8, h=16, depth=2)
        (row,) = rows
        assert row["1d"] == comm_volume_1d(6, 4, 8, 16)  # 1d always defined
        assert math.isnan(row["2d"])
        assert math.isnan(row["2.5d"])
        assert math.isnan(row["3d"])

    def test_table_power_of_two_row_is_fully_defined(self):
        (row,) = comm_volume_table([64], b=4, s=8, h=16, depth=4)
        assert not any(math.isnan(v) for v in row.values())

    def test_table_mixed_counts_never_raise(self):
        rows = comm_volume_table([1, 2, 3, 4, 8, 9, 27, 64], b=2, s=4, h=8)
        assert len(rows) == 8
        assert all(r["1d"] >= 0 for r in rows)


class TestPerfModelEdges:
    def test_world_size_one_costs_nothing(self):
        seconds, _algo = data_parallel_step_comm_time(
            uniform_cluster(2), [0], grad_bytes=1 << 20
        )
        assert seconds == 0.0

    def test_zero_gradient_bytes_cost_nothing(self):
        seconds, _algo = data_parallel_step_comm_time(
            uniform_cluster(4), [0, 1, 2, 3], grad_bytes=0
        )
        assert seconds == 0.0

    @pytest.mark.parametrize("ranks", [[0, 1, 2], [0, 1, 2, 3, 4, 5, 6]])
    def test_non_power_of_two_groups_are_finite(self, ranks):
        for algorithm in ("ring", "tree", "hierarchical", "auto"):
            seconds, algo = data_parallel_step_comm_time(
                system_ii(), ranks, grad_bytes=1 << 20, algorithm=algorithm
            )
            assert math.isfinite(seconds) and seconds > 0.0
            assert algo in ("ring", "tree", "hierarchical")

    def test_auto_never_beats_itself(self):
        cluster, ranks, nbytes = system_ii(), [0, 1, 2, 3, 4], 1 << 22
        auto, _ = data_parallel_step_comm_time(cluster, ranks, nbytes)
        for pinned in ("ring", "tree", "hierarchical"):
            fixed, _ = data_parallel_step_comm_time(
                cluster, ranks, nbytes, algorithm=pinned
            )
            assert auto <= fixed * (1 + 1e-12)

    def test_flop_models_degenerate_inputs(self):
        assert transformer_layer_flops(0, 128, 256) == 0.0
        assert training_flops_per_token(0) == 0.0
        assert training_flops_per_token(125_000_000) == 6.0 * 125_000_000


class TestCostModelEdges:
    """The CostModel underneath perf_model: every degenerate query is the
    zero cost, not an exception."""

    @pytest.fixture(scope="class")
    def model(self):
        return CostModel(uniform_cluster(8))

    def test_zero_bytes_every_op(self, model):
        ranks = [0, 1, 2, 3]
        for cost in (
            model.allreduce(ranks, 0),
            model.allgather(ranks, 0),
            model.reduce_scatter(ranks, 0),
            model.broadcast(ranks, 0),
            model.all_to_all(ranks, 0),
            model.scatter(0, ranks, 0),
            model.p2p(0, 1, 0),
            model.host_transfer(0, 0),
        ):
            assert cost.seconds == 0.0 and cost.wire_bytes == 0

    def test_single_member_group(self, model):
        assert model.allreduce([3], 1 << 20).seconds == 0.0
        assert model.barrier([3]).seconds == 0.0

    def test_p2p_to_self_is_free(self, model):
        assert model.p2p(2, 2, 1 << 20).seconds == 0.0

    @pytest.mark.parametrize("size", [3, 5, 6, 7])
    def test_non_power_of_two_rings(self, model, size):
        ranks = list(range(size))
        for op in ("allreduce", "allgather", "reduce_scatter"):
            cost = getattr(model, op)(ranks, 1 << 16)
            assert math.isfinite(cost.seconds) and cost.seconds > 0.0
            assert cost.wire_bytes > 0
