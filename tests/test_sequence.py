"""Sequence parallelism: ring primitives, layer parity, memory scaling."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.parallel.common import sync_parameter_gradients
from repro.parallel.sequence import (
    RingAV,
    RingQK,
    RingSelfAttention,
    SequenceParallelTransformerLayer,
    shard_sequence,
)
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor

from conftest import run_spmd
from parity_helpers import ATOL, B, H, NH, RATIO, SEED, block, make_input, serial_reference


def pc_sp(ctx, size=4):
    return ParallelContext(
        ctx,
        Config.from_dict(dict(parallel=dict(tensor=dict(size=size, mode="sequence")))),
    )


class TestRingPrimitives:
    def _qk_setup(self, p=4, b=2, nh=2, s=8, d=3):
        rng = np.random.default_rng(0)
        Q = rng.standard_normal((b, nh, s, d)).astype(np.float32)
        K = rng.standard_normal((b, nh, s, d)).astype(np.float32)
        G = rng.standard_normal((b, nh, s, s)).astype(np.float32)
        return Q, K, G

    def test_ringqk_forward_backward(self):
        Q, K, G = self._qk_setup()
        p = 4

        def prog(ctx):
            pc = pc_sp(ctx)
            comm = pc.comm(ParallelMode.SEQUENCE)
            q = Tensor(block(Q, 2, p, comm.rank), requires_grad=True)
            k = Tensor(block(K, 2, p, comm.rank), requires_grad=True)
            s = RingQK.apply(q, k, comm)
            s.backward(Tensor(block(G, 2, p, comm.rank)))
            return comm.rank, s.numpy(), q.grad.numpy(), k.grad.numpy()

        S_full = Q @ np.swapaxes(K, -1, -2)
        dQ = G @ K
        dK = np.swapaxes(G, -1, -2) @ Q
        for r, s_loc, dq, dk in run_spmd(4, prog):
            np.testing.assert_allclose(s_loc, block(S_full, 2, p, r), atol=ATOL)
            np.testing.assert_allclose(dq, block(dQ, 2, p, r), atol=ATOL)
            np.testing.assert_allclose(dk, block(dK, 2, p, r), atol=ATOL)

    def test_ringav_forward_backward(self):
        rng = np.random.default_rng(1)
        p, b, nh, s, d = 4, 2, 2, 8, 3
        P = rng.standard_normal((b, nh, s, s)).astype(np.float32)
        V = rng.standard_normal((b, nh, s, d)).astype(np.float32)
        G = rng.standard_normal((b, nh, s, d)).astype(np.float32)

        def prog(ctx):
            pc = pc_sp(ctx)
            comm = pc.comm(ParallelMode.SEQUENCE)
            probs = Tensor(block(P, 2, p, comm.rank), requires_grad=True)
            v = Tensor(block(V, 2, p, comm.rank), requires_grad=True)
            out = RingAV.apply(probs, v, comm)
            out.backward(Tensor(block(G, 2, p, comm.rank)))
            return comm.rank, out.numpy(), probs.grad.numpy(), v.grad.numpy()

        O = P @ V
        dP = G @ np.swapaxes(V, -1, -2)
        dV = np.swapaxes(P, -1, -2) @ G
        for r, o, dp, dv in run_spmd(4, prog):
            np.testing.assert_allclose(o, block(O, 2, p, r), atol=ATOL)
            np.testing.assert_allclose(dp, block(dP, 2, p, r), atol=ATOL)
            np.testing.assert_allclose(dv, block(dV, 2, p, r), atol=ATOL)

    def test_ring_spec_mode_shapes(self):
        def prog(ctx):
            pc = pc_sp(ctx)
            comm = pc.comm(ParallelMode.SEQUENCE)
            q = Tensor(SpecArray((2, 2, 4, 3)), requires_grad=True)
            k = Tensor(SpecArray((2, 2, 4, 3)), requires_grad=True)
            s = RingQK.apply(q, k, comm)
            s.sum().backward()
            return s.shape, q.grad.shape, k.grad.shape

        for s, qg, kg in run_spmd(4, prog, materialize=False):
            assert s == (2, 2, 4, 16)
            assert qg == (2, 2, 4, 3) and kg == (2, 2, 4, 3)


class TestLayerParity:
    def test_transformer_layer_parity(self):
        # sequence length divisible by the 4-way sequence group
        x_g = np.random.default_rng(42).standard_normal((B, 8, H)).astype(np.float32)
        ref = serial_reference(x_g)
        p = 4

        def prog(ctx):
            pc = pc_sp(ctx)
            comm = pc.comm(ParallelMode.SEQUENCE)
            layer = SequenceParallelTransformerLayer(
                H, NH, comm, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_sequence(x_g.copy(), comm), requires_grad=True)
            y = layer(x)
            y.sum().backward()
            sync_parameter_gradients(layer)
            return (
                comm.rank, y.numpy(), x.grad.numpy(),
                layer.attention.qkv.weight.grad.numpy(),
                layer.norm_1.gamma.grad.numpy(),
            )

        for r, out, xg, qkvg, lng in run_spmd(4, prog):
            np.testing.assert_allclose(out, block(ref["out"], 1, p, r), atol=ATOL)
            np.testing.assert_allclose(xg, block(ref["x_grad"], 1, p, r), atol=ATOL)
            np.testing.assert_allclose(qkvg, ref["qkv_w_grad"], atol=ATOL)
            np.testing.assert_allclose(lng, ref["ln1_gamma_grad"], atol=ATOL)

    def test_any_rank_count_works(self):
        """SP has no head-divisibility constraint (§5.3): run with 3 ranks
        where 1D TP (4 heads) could not."""
        x_g = make_input(seed=9)[:, :6, :]  # seq 6 divisible by 3
        ref_layer_in = x_g

        def prog(ctx):
            pc = pc_sp(ctx, size=3)
            comm = pc.comm(ParallelMode.SEQUENCE)
            layer = SequenceParallelTransformerLayer(
                H, NH, comm, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_sequence(ref_layer_in.copy(), comm))
            return comm.rank, layer(x).numpy()

        from repro.nn import TransformerLayer

        serial = TransformerLayer(H, NH, mlp_ratio=RATIO, rng=np.random.default_rng(SEED))
        expect = serial(Tensor(ref_layer_in.copy())).numpy()
        for r, out in run_spmd(3, prog):
            np.testing.assert_allclose(out, block(expect, 1, 3, r), atol=ATOL)

    def test_score_memory_scales_with_ranks(self):
        """Peak activation memory per rank shrinks as the sequence group
        grows — the Fig 12 mechanism."""

        def peak_for(world):
            def prog(ctx):
                pc = pc_sp(ctx, size=world)
                comm = pc.comm(ParallelMode.SEQUENCE)
                layer = SequenceParallelTransformerLayer(H, NH, comm, mlp_ratio=RATIO)
                x = Tensor(SpecArray((2, 32 // world, H)), requires_grad=True)
                layer(x).sum().backward()
                return ctx.device.memory.peak

            return run_spmd(world, prog, materialize=False)[0]

        p1 = peak_for(1)
        p4 = peak_for(4)
        assert p4 < 0.5 * p1
