"""Gradient checks for every autograd op (float64 central differences)."""

import numpy as np
import pytest

from repro.autograd import gradcheck, ops
from repro.tensor import Tensor

rng = np.random.default_rng(12345)


def t(shape, seed=None, positive=False):
    r = np.random.default_rng(seed) if seed is not None else rng
    arr = r.standard_normal(shape)
    if positive:
        arr = np.abs(arr) + 0.5
    return Tensor(arr, dtype="float64", requires_grad=True)


class TestElementwiseGrads:
    def test_add_broadcast(self):
        gradcheck(ops.add, [t((3, 4)), t((4,))])

    def test_sub(self):
        gradcheck(ops.sub, [t((2, 3)), t((2, 3))])

    def test_mul_broadcast(self):
        gradcheck(ops.mul, [t((2, 1, 3)), t((4, 3))])

    def test_div(self):
        gradcheck(ops.div, [t((3,)), t((3,), positive=True)])

    def test_neg(self):
        gradcheck(ops.neg, [t((5,))])

    def test_power(self):
        gradcheck(lambda a: ops.power(a, 3.0), [t((4,), positive=True)])

    def test_exp(self):
        gradcheck(ops.exp, [t((4,))])

    def test_log(self):
        gradcheck(ops.log, [t((4,), positive=True)])

    def test_sqrt(self):
        gradcheck(ops.sqrt, [t((4,), positive=True)])

    def test_tanh(self):
        gradcheck(ops.tanh, [t((4,))])

    def test_sigmoid(self):
        gradcheck(ops.sigmoid, [t((4,))])

    def test_gelu(self):
        gradcheck(ops.gelu, [t((6,))])

    def test_relu_away_from_kink(self):
        x = Tensor(np.array([-2.0, -0.5, 0.4, 1.7]), dtype="float64", requires_grad=True)
        gradcheck(ops.relu, [x])

    def test_scalar_operand(self):
        gradcheck(lambda a: ops.mul(a, 2.5), [t((3,))])

    def test_dunder_chain(self):
        a, b = t((3,)), t((3,), positive=True)
        gradcheck(lambda a, b: (a * b + a - b / 2.0) ** 2.0, [a, b])


class TestMatmulGrads:
    def test_2d(self):
        gradcheck(ops.matmul, [t((3, 4)), t((4, 5))])

    def test_batched(self):
        gradcheck(ops.matmul, [t((2, 3, 4)), t((2, 4, 5))])

    def test_broadcast_batch(self):
        gradcheck(ops.matmul, [t((2, 3, 4)), t((4, 5))])

    def test_4d_attention_shape(self):
        gradcheck(ops.matmul, [t((2, 2, 3, 4)), t((2, 2, 4, 3))])


class TestShapeGrads:
    def test_reshape(self):
        gradcheck(lambda a: ops.reshape(a, (6,)), [t((2, 3))])

    def test_transpose(self):
        gradcheck(lambda a: ops.transpose(a, (1, 0, 2)), [t((2, 3, 4))])

    def test_swapaxes(self):
        gradcheck(lambda a: ops.swapaxes(a, -1, -2), [t((2, 3, 4))])

    def test_slice(self):
        gradcheck(lambda a: ops.slice_(a, (slice(1, 3), slice(None))), [t((4, 3))])

    def test_concat(self):
        gradcheck(lambda a, b: ops.concat([a, b], axis=1), [t((2, 3)), t((2, 2))])

    def test_split_sum(self):
        def fn(a):
            p1, p2 = ops.split(a, 2, axis=0)
            return ops.add(p1, p2)

        gradcheck(fn, [t((4, 3))])


class TestReductionGrads:
    def test_sum_all(self):
        gradcheck(lambda a: a.sum(), [t((3, 4))])

    def test_sum_axis_keepdims(self):
        gradcheck(lambda a: ops.sum_(a, axis=1, keepdims=True), [t((3, 4))])

    def test_mean_axis(self):
        gradcheck(lambda a: ops.mean_(a, axis=0), [t((3, 4))])

    def test_mean_all(self):
        gradcheck(lambda a: a.mean(), [t((5,))])


class TestSoftmaxLossGrads:
    def test_softmax(self):
        gradcheck(lambda a: ops.softmax(a, -1), [t((3, 5))], rtol=1e-3)

    def test_log_softmax(self):
        gradcheck(lambda a: ops.log_softmax(a, -1), [t((3, 5))], rtol=1e-3)

    def test_layer_norm(self):
        x = t((3, 6))
        g = Tensor(np.random.default_rng(1).standard_normal(6) + 1.0, dtype="float64", requires_grad=True)
        b = Tensor(np.random.default_rng(2).standard_normal(6), dtype="float64", requires_grad=True)
        gradcheck(lambda x, g, b: ops.layer_norm(x, g, b), [x, g, b], rtol=2e-3, atol=1e-5)

    def test_cross_entropy(self):
        logits = t((6, 5))
        targets = np.random.default_rng(3).integers(0, 5, 6)
        gradcheck(lambda l: ops.cross_entropy(l, targets), [logits], rtol=1e-3)

    def test_mse(self):
        pred = t((4, 3))
        target = Tensor(rng.standard_normal((4, 3)), dtype="float64")
        gradcheck(lambda p: ops.mse_loss(p, target), [pred])

    def test_cast_grad(self):
        gradcheck(lambda a: ops.cast(a, "float64"), [t((3,))])


class TestEmbeddingGrad:
    def test_scatter_add(self):
        w = Tensor(rng.standard_normal((7, 3)), dtype="float64", requires_grad=True)
        idx = np.array([[0, 2], [2, 6]])
        out = ops.embedding(w, idx)
        out.sum().backward()
        expect = np.zeros((7, 3))
        for i in idx.reshape(-1):
            expect[i] += 1
        np.testing.assert_allclose(w.grad.numpy(), expect)

    def test_forward_values(self):
        w = Tensor(np.arange(12.0).reshape(4, 3))
        out = ops.embedding(w, np.array([1, 3]))
        np.testing.assert_array_equal(out.numpy(), [[3, 4, 5], [9, 10, 11]])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones(100))
        out = ops.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_scaling_preserves_mean(self):
        x = Tensor(np.ones(100_000, dtype=np.float64))
        out = ops.dropout(x, 0.3, training=True)
        assert float(out.numpy().mean()) == pytest.approx(1.0, abs=0.02)

    def test_mask_applied_to_grad(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = ops.dropout(x, 0.5, training=True)
        out.sum().backward()
        # grad zero exactly where output zero
        np.testing.assert_array_equal(x.grad.numpy() == 0, out.numpy() == 0)
