"""Tests for the configuration schema (Listing 1)."""

import pytest

from repro.config import Config, TensorParallelConfig


class TestConfigParsing:
    def test_defaults(self):
        cfg = Config.from_dict({})
        assert cfg.tensor.size == 1
        assert cfg.pipeline == 1
        assert not cfg.fp16.enabled

    def test_listing1_style(self):
        cfg = Config.from_dict(dict(parallel=dict(tensor=dict(size=4, mode="1d"))))
        assert cfg.tensor.size == 4
        assert cfg.tensor.mode == "1d"

    def test_mode_inferred_when_size_given(self):
        cfg = Config.from_dict(dict(parallel=dict(tensor=dict(size=4))))
        assert cfg.tensor.mode == "1d"

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Config.from_dict(dict(parallel=dict(tensor=dict(size=4, modee="1d"))))

    def test_unknown_top_level_rejected(self):
        with pytest.raises(ValueError):
            Config.from_dict(dict(bogus=1))

    def test_fp16_section(self):
        cfg = Config.from_dict(dict(fp16=dict(enabled=True, initial_scale=128.0)))
        assert cfg.fp16.enabled
        assert cfg.fp16.initial_scale == 128.0

    def test_zero_section(self):
        cfg = Config.from_dict(dict(zero=dict(stage=3, offload="adaptive")))
        assert cfg.zero.stage == 3

    def test_bad_zero_stage(self):
        with pytest.raises(ValueError):
            Config.from_dict(dict(zero=dict(stage=5)))

    def test_bad_offload(self):
        with pytest.raises(ValueError):
            Config.from_dict(dict(zero=dict(offload="sometimes")))


class TestTopologyConstraints:
    def test_2d_needs_square(self):
        with pytest.raises(ValueError, match="square"):
            Config.from_dict(dict(parallel=dict(tensor=dict(size=6, mode="2d"))))
        Config.from_dict(dict(parallel=dict(tensor=dict(size=9, mode="2d"))))

    def test_25d_needs_dq2(self):
        with pytest.raises(ValueError):
            Config.from_dict(dict(parallel=dict(tensor=dict(size=6, mode="2.5d", depth=2))))
        Config.from_dict(dict(parallel=dict(tensor=dict(size=8, mode="2.5d", depth=2))))

    def test_3d_needs_cube(self):
        with pytest.raises(ValueError, match="cubic"):
            Config.from_dict(dict(parallel=dict(tensor=dict(size=4, mode="3d"))))
        Config.from_dict(dict(parallel=dict(tensor=dict(size=27, mode="3d"))))

    def test_1d_any_size(self):
        for n in (2, 3, 5, 7):
            Config.from_dict(dict(parallel=dict(tensor=dict(size=n, mode="1d"))))

    def test_none_mode_size1(self):
        with pytest.raises(ValueError):
            TensorParallelConfig(size=2, mode="none").validate()


class TestWorldDecomposition:
    def test_infer_data_size(self):
        cfg = Config.from_dict(
            dict(parallel=dict(tensor=dict(size=2, mode="1d"), pipeline=2))
        )
        assert cfg.infer_data_size(8) == 2

    def test_indivisible_world(self):
        cfg = Config.from_dict(dict(parallel=dict(tensor=dict(size=3, mode="1d"))))
        with pytest.raises(ValueError):
            cfg.infer_data_size(8)

    def test_explicit_data_consistency(self):
        cfg = Config.from_dict(
            dict(parallel=dict(data=4, tensor=dict(size=2, mode="1d")))
        )
        assert cfg.infer_data_size(8) == 4
        with pytest.raises(ValueError):
            cfg.infer_data_size(4)
