"""Cross-module integration tests: compositions of features the paper
advertises as freely combinable (§4 modularity)."""

import numpy as np
import pytest

import repro
from repro.autograd import checkpoint, ops
from repro.cluster import uniform_cluster
from repro.comm import Communicator, SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.models import ViTConfig, build_vit
from repro.nn import CrossEntropyLoss, TransformerLayer
from repro.optim import AdamW, SGD
from repro.parallel.tensor1d import ParallelTransformerLayer1D
from repro.parallel.tensor2d import ParallelTransformerLayer2D, shard_activation_2d
from repro.tensor import Tensor

from conftest import run_spmd
from parity_helpers import ATOL, B, H, NH, RATIO, SEED, block, make_input, serial_reference


class TestCheckpointWithTensorParallel:
    """Activation checkpointing must compose with every TP mode: the
    recompute re-executes the collectives, so gradients stay exact."""

    def test_1d_checkpointed_parity(self):
        x_g = make_input()
        ref = serial_reference(x_g)

        def prog(ctx):
            pc = ParallelContext(
                ctx, Config.from_dict(dict(parallel=dict(tensor=dict(size=4, mode="1d"))))
            )
            layer = ParallelTransformerLayer1D(
                H, NH, pc.comm(ParallelMode.TENSOR), mlp_ratio=RATIO,
                rng=np.random.default_rng(SEED),
            )
            x = Tensor(x_g.copy(), requires_grad=True)
            y = checkpoint(layer, x)
            y.sum().backward()
            return y.numpy(), x.grad.numpy()

        for out, xg in run_spmd(4, prog):
            np.testing.assert_allclose(out, ref["out"], atol=ATOL)
            np.testing.assert_allclose(xg, ref["x_grad"], atol=ATOL)

    def test_2d_checkpointed_parity(self):
        x_g = make_input()
        ref = serial_reference(x_g)
        q = 2

        def prog(ctx):
            pc = ParallelContext(
                ctx, Config.from_dict(dict(parallel=dict(tensor=dict(size=4, mode="2d"))))
            )
            layer = ParallelTransformerLayer2D(
                H, NH, pc, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_activation_2d(x_g.copy(), pc), requires_grad=True)
            y = checkpoint(layer, x)
            y.sum().backward()
            return pc.row_rank, pc.col_rank, y.numpy(), x.grad.numpy()

        for i, j, out, xg in run_spmd(4, prog):
            np.testing.assert_allclose(
                out, block(block(ref["out"], 0, q, i), 2, q, j), atol=ATOL
            )
            np.testing.assert_allclose(
                xg, block(block(ref["x_grad"], 0, q, i), 2, q, j), atol=ATOL
            )

    def test_checkpoint_saves_memory_under_tp(self):
        def peak(use_ckpt):
            def prog(ctx):
                pc = ParallelContext(
                    ctx,
                    Config.from_dict(dict(parallel=dict(tensor=dict(size=4, mode="1d")))),
                )
                layers = [
                    ParallelTransformerLayer1D(
                        64, 4, pc.comm(ParallelMode.TENSOR), mlp_ratio=4
                    )
                    for _ in range(4)
                ]
                x = Tensor(SpecArray((8, 32, 64)), requires_grad=True)
                h = x
                for l in layers:
                    h = checkpoint(l, h) if use_ckpt else l(h)
                h.sum().backward()
                return ctx.device.memory.peak

            return run_spmd(4, prog, materialize=False)[0]

        assert peak(True) < peak(False)


class TestDPxTP:
    """Data parallelism wrapped around tensor parallelism: 8 ranks =
    dp2 x tp4, gradients must equal serial full-batch training."""

    def test_hybrid_grads_match_serial(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((8, 6, H)).astype(np.float32)

        from repro.nn import TransformerLayer

        serial = TransformerLayer(H, NH, mlp_ratio=RATIO, rng=np.random.default_rng(SEED))
        xs = Tensor(X.copy(), requires_grad=True)
        # serial "mean over batch" objective
        serial(xs).mean().backward()
        ref_grad = serial.mlp.dense_1.weight.grad.numpy()

        def prog(ctx):
            pc = ParallelContext(
                ctx, Config.from_dict(dict(parallel=dict(tensor=dict(size=4, mode="1d"))))
            )
            layer = ParallelTransformerLayer1D(
                H, NH, pc.comm(ParallelMode.TENSOR), mlp_ratio=RATIO,
                rng=np.random.default_rng(SEED),
            )
            from repro.parallel.data import shard_batch, sync_gradients

            xl = shard_batch(X, pc)  # dp=2: each replica gets 4 rows
            x = Tensor(xl.copy(), requires_grad=True)
            out = layer(x)
            # local mean * (local share) -> average handled by DP mean-sync
            out.mean().backward()
            sync_gradients(layer.parameters(), pc.comm(ParallelMode.DATA))
            return layer.mlp.dense_1.weight.grad.numpy(), pc.tp_rank

        for g, tp_rank in run_spmd(8, prog):
            expect = block(ref_grad, 1, 4, tp_rank)
            np.testing.assert_allclose(g, expect, atol=1e-5)


class TestFP16xTensorParallel:
    def test_fp16_2d_vit_trains(self):
        cfg = ViTConfig(
            image_size=8, patch_size=2, in_channels=3, hidden_size=16,
            n_layers=1, n_heads=4, n_classes=4, mlp_ratio=2, seed=2,
        )
        rng = np.random.default_rng(0)
        X = rng.standard_normal((4, 8, 8, 3)).astype(np.float32)
        Y = rng.integers(0, 4, 4)

        def prog(ctx, pc):
            bundle = build_vit(cfg, pc, mode="2d")
            engine = repro.initialize(
                bundle.model,
                AdamW(bundle.model.parameters(), lr=1e-3, weight_decay=0.0),
                None, pc=pc,
                config=Config.from_dict(
                    dict(parallel=dict(tensor=dict(size=4, mode="2d")),
                         fp16=dict(enabled=True))
                ),
            )
            losses = []
            for _ in range(3):
                engine.zero_grad()
                x = Tensor(bundle.shard_input(X.copy()))
                out = engine(x)
                loss = bundle.loss_fn(out, bundle.shard_target(Y))
                engine.backward(loss)
                engine.step()
                losses.append(loss.item())
            dtypes = {p.dtype.name for p in bundle.model.parameters()}
            return losses, dtypes

        cfg_d = dict(parallel=dict(tensor=dict(size=4, mode="2d")), fp16=dict(enabled=True))
        res = repro.launch(cfg_d, uniform_cluster(4), prog, world_size=4)
        losses, dtypes = res[0]
        assert dtypes == {"float16"}
        assert losses[-1] < losses[0]
        # all ranks observe the same loss trajectory
        other_losses = res[1][0]
        assert all(abs(a - b) < 1e-3 for a, b in zip(losses, other_losses))


class TestSpecModeEndToEnd:
    def test_full_vit_bundle_spec(self):
        """Every mode's full ViT bundle runs fwd+bwd in spec mode (the path
        the big throughput benches rely on)."""
        cfg = ViTConfig(
            image_size=8, patch_size=2, in_channels=3, hidden_size=16,
            n_layers=2, n_heads=4, n_classes=4, mlp_ratio=2,
        )

        for mode, world, cdict in [
            ("1d", 4, dict(parallel=dict(tensor=dict(size=4, mode="1d")))),
            ("2d", 4, dict(parallel=dict(tensor=dict(size=4, mode="2d")))),
            ("3d", 8, dict(parallel=dict(tensor=dict(size=8, mode="3d")))),
        ]:
            def prog(ctx, pc):
                bundle = build_vit(cfg, pc, mode=mode)
                x = bundle.shard_input(SpecArray((8, 8, 8, 3), "float32"))
                out = bundle.model(Tensor(x) if not isinstance(x, Tensor) else x)
                loss = bundle.loss_fn(out, bundle.shard_target(SpecArray((8,), "int64")))
                loss.backward()
                return ctx.device.memory.peak > 0 and ctx.clock.time > 0

            assert all(
                repro.launch(cdict, uniform_cluster(world), prog,
                             world_size=world, materialize=False)
            ), mode


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        """Whole-training determinism: two SPMD runs produce byte-identical
        weights (collective order + seeded init + deterministic reduction)."""

        def train(ctx, pc):
            bundle = build_vit(
                ViTConfig(image_size=8, patch_size=2, in_channels=3,
                          hidden_size=16, n_layers=1, n_heads=4, n_classes=4,
                          mlp_ratio=2),
                pc, mode="2d",
            )
            opt = SGD(bundle.model.parameters(), lr=0.1)
            rng = np.random.default_rng(1)
            for _ in range(2):
                X = rng.standard_normal((4, 8, 8, 3)).astype(np.float32)
                Y = rng.integers(0, 4, 4)
                out = bundle.model(Tensor(bundle.shard_input(X)))
                loss = bundle.loss_fn(out, bundle.shard_target(Y))
                loss.backward()
                opt.step()
                opt.zero_grad()
            return bundle.model.state_dict()["head.weight"].tobytes()

        cdict = dict(parallel=dict(tensor=dict(size=4, mode="2d")))
        a = repro.launch(cdict, uniform_cluster(4), train, world_size=4)
        b = repro.launch(cdict, uniform_cluster(4), train, world_size=4)
        assert a == b
