"""Comm/compute overlap: hide gradient all-reduces behind backward.

Data-parallel training spends a large slice of every step averaging
gradients.  With ``comm.overlap`` the DDP wrapper lays gradient buckets
over *reversed* parameter-registration order and issues each bucket's
all-reduce nonblocking from a gradient hook the moment its last gradient
lands — so while backward is still computing layer k's gradients, layers
k+1..N are already on the wire.  ``sync()`` then only waits the handles:
step time shrinks by the *hidden* portion of comm, and the numerics stay
bitwise identical (the parity suite asserts this across DDP, ZeRO and
pipeline schedules).

This script trains the same spec-mode ViT stack twice — overlap off and
on — and prints the step-time delta, the per-rank exposed/overlapped
split from the comm-stream clocks, and the trace-report overlap table.

Run:  PYTHONPATH=src python examples/overlap_ddp.py
"""

import numpy as np

from repro.autograd import checkpoint
from repro.cluster import system_ii
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext
from repro.nn import TransformerLayer
from repro.nn.module import Module
from repro.parallel.data import DistributedDataParallel
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor
from repro.trace import TraceReport, Tracer

WORLD, LAYERS, HIDDEN, HEADS = 8, 16, 3072, 48
BATCH, PATCHES = 64, 196


class ViTStack(Module):
    def __init__(self):
        super().__init__()
        for i in range(LAYERS):
            setattr(self, f"layer{i}", TransformerLayer(HIDDEN, HEADS, dtype="float16"))

    def forward(self, x):
        for i in range(LAYERS):
            x = checkpoint(getattr(self, f"layer{i}"), x)
        return x


def step_time(overlap: bool, tracer=None):
    cluster = system_ii()
    cluster.reset()
    rt = SpmdRuntime(cluster, WORLD, comm_overlap=overlap, tracer=tracer)

    def prog(ctx):
        pc = ParallelContext(ctx, Config.from_dict({}))
        ddp = DistributedDataParallel(ViTStack(), pc, overlap=overlap)
        x = Tensor(
            SpecArray((BATCH // WORLD, PATCHES, HIDDEN), "float16"),
            requires_grad=True,
        )
        t0 = ctx.clock.time
        ddp(x).sum().backward()
        ddp.sync()
        return ctx.clock.time - t0

    seconds = max(rt.run(prog, materialize=False))
    return seconds, rt


print(f"=== DDP ViT on System II: {WORLD} ranks, {LAYERS}x{HIDDEN} fp16 ===\n")

t_off, _ = step_time(overlap=False)
tracer = Tracer()
t_on, rt = step_time(overlap=True, tracer=tracer)

print(f"overlap off : {t_off * 1e3:8.2f} ms/step")
print(f"overlap on  : {t_on * 1e3:8.2f} ms/step")
print(f"reduction   : {1 - t_on / t_off:8.1%}  ({t_off / t_on:.2f}x)\n")

print("per-rank comm-stream split (seconds):")
print(f"{'rank':>4}  {'stream':>9}  {'exposed':>9}  {'overlapped':>10}  hidden")
for r, s in enumerate(rt.comm_streams):
    busy = s.busy_seconds()
    hidden = s.overlapped_seconds / busy if busy else 0.0
    print(
        f"{r:4d}  {busy:9.4f}  {s.exposed_seconds:9.4f}  "
        f"{s.overlapped_seconds:10.4f}  {hidden:6.1%}"
    )

counters = rt.group(tuple(range(WORLD))).counters
print(
    f"\ngroup totals: exposed {counters.exposed_seconds_total:.4f}s, "
    f"overlapped {counters.overlapped_seconds_total:.4f}s "
    f"over {counters.calls_total} collectives / "
    f"{counters.bytes_total / 2**30:.2f} GiB on the wire"
)

print("\ntrace report (note the comm-stream overlap table):\n")
print(TraceReport.from_tracer(tracer).format(topk=3))

assert t_on < t_off, "overlap must not slow the step down"
assert counters.overlapped_seconds_total > 0.0
print("\nOK: step got faster; every hidden second is accounted for.")
