"""Quickstart: the paper's Listing 1 workflow on a simulated cluster.

Trains a small ViT with 2D tensor parallelism on 4 simulated A100s,
using the ``config -> launch -> initialize -> engine loop`` API.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.cluster import system_i
from repro.data import DataLoader, synthetic_image_classification
from repro.models import ViTConfig, build_vit
from repro.optim import AdamW
from repro.tensor import Tensor

# 1. describe the parallelization declaratively (Listing 1)
config = dict(
    parallel=dict(tensor=dict(size=4, mode="2d")),
    seed=0,
)

vit_cfg = ViTConfig(
    image_size=16, patch_size=4, in_channels=3,
    hidden_size=32, n_layers=2, n_heads=4, n_classes=4, mlp_ratio=2,
)


def train(ctx, pc):
    # 2. build the parallel model + optimizer for this rank
    bundle = build_vit(vit_cfg, pc, mode="2d")
    engine = repro.initialize(
        bundle.model,
        AdamW(bundle.model.parameters(), lr=3e-3, weight_decay=0.0),
        criterion=None,  # loss comes from the mode-aware bundle
        pc=pc,
    )

    images, labels = synthetic_image_classification(
        256, image_size=16, channels=3, n_classes=4, noise=0.4, seed=1
    )
    loader = DataLoader(images, labels, batch_size=32, seed=0)

    # 3. the Listing-1 training loop
    losses = []
    for epoch in range(3):
        for data, label in loader:
            engine.zero_grad()
            output = engine(Tensor(bundle.shard_input(data)))
            loss = bundle.loss_fn(output, bundle.shard_target(label))
            engine.backward(loss)
            engine.step()
            losses.append(loss.item())
    return losses, ctx.clock.time


if __name__ == "__main__":
    results = repro.launch(config, system_i(), train, world_size=4)
    losses, sim_t = results[0]
    print(f"trained 3 epochs on 4 simulated A100s (2D tensor parallel)")
    print(f"loss: {losses[0]:.3f} -> {losses[-1]:.3f}")
    print(f"simulated time: {sim_t*1e3:.2f} ms")
    assert losses[-1] < losses[0], "training should reduce the loss"
    print("OK")
