"""Automatic parallelization (§3.3 / §6 of the paper).

Demonstrates the two experimental auto-parallel components:

1. the sharded-layout **conversion planner** — a best-first search over
   conversion primitives (the paper's greedy improvement on Alpa's
   hardcoded conversion table), executed SPMD to prove the plan is real;
2. the hardware-aware **strategy advisor** — it recommends 1D tensor
   parallelism on the fully-NVLinked System I but switches to 2D on the
   partially-connected System II, matching the paper's Fig 11 conclusion,
   and proposes model parallelism whenever a workload cannot fit under
   pure data parallelism.

Run:  python examples/auto_parallel_advisor.py
"""

import numpy as np

from repro.autopar import Layout, ParallelPlan, convert_payload, plan_conversion, suggest_plans
from repro.autopar.advisor import Workload, estimate_plan
from repro.cluster import system_i, system_ii, uniform_cluster
from repro.comm import Communicator
from repro.runtime import SpmdRuntime
from repro.utils.units import GB


def demo_conversion():
    print("=== sharded-layout conversion search ===")
    mesh = {"x": 2, "y": 2}
    cases = [
        ({0: ["x"]}, {1: ["x"]}, "row-shard -> col-shard"),
        ({0: ["x", "y"]}, {0: ["y"], 1: ["x"]}, "double-row -> mixed"),
    ]
    for src_a, dst_a, label in cases:
        src, dst = Layout.make(2, src_a), Layout.make(2, dst_a)
        plan = plan_conversion(src, dst, (8, 8), mesh)
        print(f"{label}: {plan.steps}  (modeled {plan.cost*1e6:.1f} us)")

    # execute the first plan SPMD and verify it equals direct resharding
    src, dst = Layout.make(2, cases[0][0]), Layout.make(2, cases[0][1])
    plan = plan_conversion(src, dst, (8, 8), mesh)
    global_t = np.arange(64, dtype=np.float32).reshape(8, 8)

    def prog(ctx):
        comm = Communicator.world(ctx)
        coord = {"x": ctx.rank // 2, "y": ctx.rank % 2}
        comms = {
            "x": comm.split(color=coord["y"], key=coord["x"]),
            "y": comm.split(color=coord["x"], key=coord["y"]),
        }
        local = np.split(global_t, 2, axis=0)[coord["x"]].copy()
        out = convert_payload(local, plan, comms, coord)
        expect = np.split(global_t, 2, axis=1)[coord["x"]]
        assert np.array_equal(out, expect)
        return True

    assert all(SpmdRuntime(uniform_cluster(4)).run(prog))
    print("plan executed SPMD: converted shards match direct resharding\n")


def demo_advisor():
    print("=== hardware-aware strategy advisor ===")
    work = Workload(n_layers=16, hidden=3072, n_heads=48, seq_len=196)
    for name, cluster in (("System I", system_i()), ("System II", system_ii())):
        t = {
            mode: estimate_plan(
                cluster, work, ParallelPlan(1, 4, mode, 1), global_batch=256
            ).step_seconds
            for mode in ("1d", "2d")
        }
        pick = min(t, key=t.get)
        print(f"{name}: tensor=4 -> prefer {pick.upper()}  "
              f"(1d {t['1d']:.3f}s vs 2d {t['2d']:.3f}s)")
    assert estimate_plan(system_i(), work, ParallelPlan(1, 4, "1d", 1), 256).step_seconds < \
           estimate_plan(system_i(), work, ParallelPlan(1, 4, "2d", 1), 256).step_seconds
    assert estimate_plan(system_ii(), work, ParallelPlan(1, 4, "2d", 1), 256).step_seconds < \
           estimate_plan(system_ii(), work, ParallelPlan(1, 4, "1d", 1), 256).step_seconds
    print("matches the paper's Fig 11 conclusion\n")

    big = Workload(n_layers=32, hidden=4096, n_heads=64, seq_len=512)
    cluster = uniform_cluster(8, memory_gb=16)
    plans = suggest_plans(cluster, big, global_batch=64, world_size=8, top_k=3)
    print("best plans for a 2.6B model on 8x16GB GPUs (pure DP cannot fit):")
    for est in plans:
        print(f"  {est.plan.describe():28s} step {est.step_seconds:.2f}s "
              f"mem {est.memory_bytes/GB:.1f}G {est.notes}")
    assert all(e.plan.tensor * e.plan.pipeline > 1 for e in plans)


if __name__ == "__main__":
    demo_conversion()
    demo_advisor()
    print("OK")
