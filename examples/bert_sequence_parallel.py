"""Sequence parallelism on BERT (§5.3 of the paper).

Compares 1D tensor parallelism against sequence parallelism (ring
self-attention) on a BERT-style model:

* memory — the largest sequence length each mode can fit on a small
  simulated GPU (spec-mode OOM search, the Fig 12 method), and
* correctness — SP training losses match serial training exactly.

Run:  python examples/bert_sequence_parallel.py
"""

import numpy as np

import repro
from repro.cluster import uniform_cluster
from repro.cluster.device import DeviceOutOfMemoryError
from repro.comm.payload import SpecArray
from repro.models import BertConfig, build_bert
from repro.optim import AdamW
from repro.parallel.common import sync_parameter_gradients
from repro.runtime import RemoteRankError
from repro.tensor import Tensor


def _fits(mode, world, batch, seq, mem_gb):
    config = dict(parallel=dict(tensor=dict(size=world, mode=mode)))
    cfg = BertConfig(
        vocab_size=1024, hidden_size=256, n_layers=4, n_heads=8,
        seq_len=seq, dtype="float16",
    )

    def probe(ctx, pc):
        bundle = build_bert(cfg, pc, mode=mode)
        ids = SpecArray((batch, seq), "int64")
        out = bundle.model(bundle.shard_input(ids))
        bundle.loss_fn(out, bundle.shard_target(ids)).backward()

    try:
        repro.launch(
            config, uniform_cluster(world, memory_gb=mem_gb), probe,
            world_size=world, materialize=False,
        )
        return True
    except RemoteRankError as e:
        if isinstance(e.cause, DeviceOutOfMemoryError):
            return False
        raise


def max_seq_len(mode, world, batch=8, mem_gb=2.0, step=64):
    """Largest sequence length whose spec-mode fwd+bwd fits: doubling
    ascent, then binary refinement to ``step`` granularity (the Fig 12b
    method)."""
    lo, hi = 0, step
    while hi <= 32768 and _fits(mode, world, batch, hi, mem_gb):
        lo, hi = hi, hi * 2
    while hi - lo > step:
        mid = (lo + hi) // 2 // step * step
        if _fits(mode, world, batch, mid, mem_gb):
            lo = mid
        else:
            hi = mid
    return lo


def sp_training_matches_serial():
    cfg = BertConfig(vocab_size=64, hidden_size=32, n_layers=2, n_heads=4,
                     seq_len=16, mlp_ratio=2)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 64, (4, 16))
    targets = rng.integers(0, 64, (4, 16))

    # serial reference: 2 training steps
    bundle_s = build_bert(cfg, mode="serial")
    opt = AdamW(bundle_s.model.parameters(), lr=1e-3, weight_decay=0.0)
    serial_losses = []
    for _ in range(2):
        loss = bundle_s.loss_fn(bundle_s.model(ids), targets)
        loss.backward()
        opt.step()
        opt.zero_grad()
        serial_losses.append(loss.item())

    def train(ctx, pc):
        bundle = build_bert(cfg, pc, mode="sequence")
        opt = AdamW(bundle.model.parameters(), lr=1e-3, weight_decay=0.0)
        losses = []
        for _ in range(2):
            loss = bundle.loss_fn(
                bundle.model(bundle.shard_input(ids)), bundle.shard_target(targets)
            )
            loss.backward()
            sync_parameter_gradients(bundle.model)
            opt.step()
            opt.zero_grad()
            losses.append(loss.item())
        return losses

    config = dict(parallel=dict(tensor=dict(size=4, mode="sequence")))
    sp_losses = repro.launch(config, uniform_cluster(4), train, world_size=4)[0]
    return serial_losses, sp_losses


if __name__ == "__main__":
    print("max sequence length before OOM (spec-mode search, 2 GiB GPUs):")
    for mode, world in (("1d", 4), ("sequence", 4), ("sequence", 8)):
        s = max_seq_len(mode, world)
        print(f"  {mode:9s} x{world}: seq <= {s}")

    s1 = max_seq_len("1d", 4)
    ssp = max_seq_len("sequence", 4)
    assert ssp >= s1, "sequence parallelism should reach longer sequences"
    print(f"SP/1D max-seq ratio at 4 ranks: {ssp / s1:.2f}x (Fig 12b shape)")

    serial_losses, sp_losses = sp_training_matches_serial()
    print(f"serial losses: {serial_losses}")
    print(f"SP losses:     {sp_losses}")
    assert all(abs(a - b) < 1e-4 for a, b in zip(serial_losses, sp_losses))
    print("ring self-attention training matches serial exactly")
