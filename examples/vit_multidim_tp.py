"""Multi-dimensional tensor parallelism on ViT (§5.2 of the paper).

Trains the same ViT under serial execution and 1D / 2D / 2.5D / 3D tensor
parallelism, demonstrating:

* arithmetic equivalence — every mode follows the exact same loss curve
  (the Fig 7 claim), and
* the memory split — each mode's per-rank parameter bytes.

Run:  python examples/vit_multidim_tp.py
"""

import numpy as np

import repro
from repro.cluster import uniform_cluster
from repro.data import DataLoader, synthetic_image_classification
from repro.models import ViTConfig, build_vit
from repro.optim import AdamW
from repro.tensor import Tensor

VIT = ViTConfig(
    image_size=16, patch_size=4, in_channels=3,
    hidden_size=32, n_layers=2, n_heads=4, n_classes=4, mlp_ratio=2, seed=3,
)

MODES = [
    ("serial", 1, {}),
    ("1d", 4, dict(parallel=dict(tensor=dict(size=4, mode="1d")))),
    ("2d", 4, dict(parallel=dict(tensor=dict(size=4, mode="2d")))),
    ("2.5d", 8, dict(parallel=dict(tensor=dict(size=8, mode="2.5d", depth=2)))),
    ("3d", 8, dict(parallel=dict(tensor=dict(size=8, mode="3d")))),
]


def make_data():
    return synthetic_image_classification(
        192, image_size=16, channels=3, n_classes=4, noise=0.4, seed=7
    )


def run_mode(mode, world, config):
    images, labels = make_data()

    def train(ctx, pc):
        bundle = build_vit(VIT, pc, mode=mode)
        engine = repro.initialize(
            bundle.model,
            AdamW(bundle.model.parameters(), lr=3e-3, weight_decay=0.0),
            None, pc=pc,
        )
        loader = DataLoader(images, labels, batch_size=32, seed=0)
        curve = []
        for _ in range(2):
            for data, label in loader:
                engine.zero_grad()
                out = engine(Tensor(bundle.shard_input(data)))
                loss = bundle.loss_fn(out, bundle.shard_target(label))
                engine.backward(loss)
                engine.step()
                curve.append(loss.item())
        param_bytes = sum(p.nbytes for p in bundle.model.parameters())
        return curve, param_bytes

    results = repro.launch(config, uniform_cluster(world), train, world_size=world)
    return results[0]


if __name__ == "__main__":
    curves = {}
    print(f"{'mode':8s} {'ranks':>5s} {'param bytes/rank':>18s} {'final loss':>12s}")
    for mode, world, config in MODES:
        curve, pbytes = run_mode(mode, world, config)
        curves[mode] = curve
        print(f"{mode:8s} {world:5d} {pbytes:18,d} {curve[-1]:12.4f}")

    ref = np.array(curves["serial"])
    for mode in ("1d", "2d", "2.5d", "3d"):
        drift = np.abs(np.array(curves[mode]) - ref).max()
        print(f"max loss-curve deviation vs serial [{mode}]: {drift:.2e}")
        assert drift < 1e-3, f"{mode} diverged from serial"
    print("all tensor-parallel modes follow the serial loss curve exactly (Fig 7)")
