"""Fault-tolerant training: straggler + rank crash + checkpoint/resume.

Trains a small ViT with DP2 x TP2 on 4 simulated GPUs while a seeded
``FaultPlan`` injects a straggler (rank 3 runs 3x slow) and then kills
rank 1 mid-run.  Every rank snapshots its state to a ``CheckpointManager``
every 2 steps; after the crash the supervisor resumes every rank from the
newest *consistent* checkpoint and training finishes with results bitwise
identical to a fault-free run.

Run:  python examples/fault_tolerant_training.py
"""

import numpy as np

import repro
from repro.cluster import uniform_cluster
from repro.data import DataLoader, synthetic_image_classification
from repro.faults import FaultPlan
from repro.models import ViTConfig, build_vit
from repro.optim import AdamW
from repro.parallel.data import shard_batch
from repro.runtime import SpmdRuntime
from repro.runtime.errors import RankFailure, RemoteRankError
from repro.trainer import CheckpointManager, LossLoggingHook, Trainer

WORLD = 4
EPOCHS = 3
CRASH_STEP = 5
config = dict(parallel=dict(tensor=dict(size=2, mode="1d")))  # dp2 x tp2

vit_cfg = ViTConfig(
    image_size=8, patch_size=4, in_channels=2,
    hidden_size=16, n_layers=1, n_heads=2, n_classes=3, mlp_ratio=1, seed=5,
)


def build_training(pc, manager):
    """Per-rank model/engine/trainer/loader — rebuilt after a crash, the
    way a restarted job re-executes its setup code."""
    images, labels = synthetic_image_classification(
        48, image_size=8, channels=2, n_classes=3, noise=0.3, seed=1
    )
    bundle = build_vit(vit_cfg, pc, mode="1d")
    engine = repro.initialize(
        bundle.model,
        AdamW(bundle.model.parameters(), lr=3e-3, weight_decay=0.0),
        criterion=None, pc=pc,
    )
    trainer = Trainer(
        engine,
        hooks=[LossLoggingHook(every=1)],
        shard_input=lambda x: shard_batch(np.asarray(x), pc),
        loss_fn=lambda out, y: bundle.loss_fn(out, shard_batch(np.asarray(y), pc)),
        checkpoint=manager,
        checkpoint_every=2,
    )
    loader = DataLoader(images, labels, batch_size=16, seed=0)
    return bundle, trainer, loader


if __name__ == "__main__":
    # fault-free reference run
    def reference(ctx, pc):
        bundle, trainer, loader = build_training(pc, manager=None)
        hist = trainer.fit(loader, epochs=EPOCHS)
        return hist["loss"], bundle.model.state_dict()

    ref = repro.launch(config, uniform_cluster(WORLD), reference, world_size=WORLD)
    print(f"reference run: {len(ref[0][0])} steps, "
          f"loss {ref[0][0][0]:.3f} -> {ref[0][0][-1]:.3f}")

    # chaos run: rank 3 is a straggler, rank 1 dies at step 5
    plan = (FaultPlan(seed=42)
            .straggler(rank=3, factor=3.0)
            .crash(rank=1, at_step=CRASH_STEP))
    runtime = SpmdRuntime(uniform_cluster(WORLD), fault_plan=plan)
    manager = CheckpointManager()

    def faulted(ctx, pc):
        bundle, trainer, loader = build_training(pc, manager)
        trainer.fit(loader, epochs=EPOCHS)
        return "finished"

    try:
        repro.launch(config, uniform_cluster(WORLD), faulted,
                     world_size=WORLD, runtime=runtime)
        raise SystemExit("expected the injected crash to abort the run")
    except RemoteRankError as err:
        assert isinstance(err.__cause__, RankFailure)
        print(f"crash detected: {err.__cause__}")

    step = manager.latest_common_step(WORLD)
    print(f"resuming every rank from consistent checkpoint at step {step}")

    def resumed(ctx, pc):
        bundle, trainer, loader = build_training(pc, manager)
        manager.load(ctx.rank, step).restore(trainer, loader)
        hist = trainer.fit(loader, epochs=EPOCHS)
        return hist["loss"], bundle.model.state_dict()

    # same runtime: the crashed "node" was replaced, the straggler persists
    res = repro.launch(config, uniform_cluster(WORLD), resumed,
                       world_size=WORLD, runtime=runtime)

    for rank in range(WORLD):
        assert res[rank][0] == ref[rank][0], "loss trajectories diverged"
        for k, v in ref[rank][1].items():
            assert v.tobytes() == res[rank][1][k].tobytes(), f"{k} diverged"
    print(f"loss after resume: {res[0][0][-1]:.3f} "
          f"(matches reference {ref[0][0][-1]:.3f})")
    print("resumed run is bitwise identical to the fault-free run. OK")
