"""Hybrid-axis projection: a 16-rank DP x TP x PP capture -> 512 ranks.

``ScalePlan(axes={"dp": k1, "tp": k2, "pp": k3})`` widens several
parallel axes of one capture simultaneously — the paper's 512-GPU hybrid
grids answered from a 16-thread run.  Each named axis owns the group
family the captured layout built for it (:func:`derive_axis_groups`
mirrors the ``ParallelContext`` rank-layout formulas); a captured group
widens by the *product* of the factors of the axes it belongs to, while
the other axes' factors multiply into its replica weight.  Declaring
``sharded_bytes`` per axis models how widening re-shards state — ZeRO
optimizer partitions along ``dp``, weight shards along ``tp`` — so the
projected peak memory *drops* below the captured peak instead of echoing
it.

This script captures a 4-layer GPT hybrid (DP 4 x TP 2 x PP 2, GPipe
microbatching, gradient sync) at 16 threaded ranks, projects it onto the
512-rank paper grid ``{"dp": 8, "tp": 2, "pp": 2}``, and prints the
per-axis traffic breakdown, the composed step-time estimate and the
ZeRO-1-sharded peak memory.

Run:  PYTHONPATH=src python examples/project_hybrid_512.py
"""

import time

import numpy as np

from repro.analytic.memory_model import zero_partitioned_bytes
from repro.cluster import system_iii, uniform_cluster
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.nn import CrossEntropyLoss, Linear, Module, ModuleList
from repro.parallel.data import sync_gradients
from repro.parallel.pipeline import GPipeSchedule, partition_uniform
from repro.parallel.tensor1d import ParallelTransformerLayer1D
from repro.project import Fabric, capture_run, hybrid_plan, project
from repro.project.axes import derive_axis_groups

WORLD, TPD, PPD = 16, 2, 2          # 16 ranks = DP 4 x TP 2 x PP 2
LAYERS, HIDDEN, HEADS, CLASSES = 4, 128, 8, 16
BATCH, SEQ, MICROBATCHES = 8, 4, 2
FACTORS = {"dp": 8, "tp": 2, "pp": 2}   # 16 -> 512 ranks

CFG = Config.from_dict(
    dict(
        parallel=dict(tensor=dict(size=TPD, mode="1d"), pipeline=PPD),
        num_microbatches=MICROBATCHES,
    )
)
rng = np.random.default_rng(0)
X = rng.standard_normal((BATCH, SEQ, HIDDEN)).astype(np.float32)
Y = rng.integers(0, CLASSES, (BATCH, SEQ))


class Stage(Module):
    """One pipeline stage of 1D-tensor-parallel transformer layers."""

    def __init__(self, idxs, tp_comm, with_head):
        super().__init__()
        self.layers = ModuleList([
            ParallelTransformerLayer1D(
                HIDDEN, HEADS, tp_comm, 2, causal=True,
                rng=np.random.default_rng((5, i)),
            )
            for i in idxs
        ])
        self.head = (
            Linear(HIDDEN, CLASSES, rng=np.random.default_rng(9))
            if with_head else None
        )

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return self.head(x) if self.head is not None else x


def prog(ctx):
    pc = ParallelContext(ctx, CFG)
    s, e = partition_uniform(LAYERS, pc.pipeline_size)[pc.pp_rank]
    stage = Stage(
        range(s, e), pc.comm(ParallelMode.TENSOR),
        with_head=pc.is_last_pipeline_stage(),
    )
    GPipeSchedule(pc, MICROBATCHES).run(
        stage,
        X if pc.is_first_pipeline_stage() else None,
        Y if pc.is_last_pipeline_stage() else None,
        CrossEntropyLoss(),
    )
    sync_gradients(stage.parameters(), pc.comm(ParallelMode.DATA))
    return sum(int(p.payload.size) for p in stage.parameters())


def main():
    t0 = time.perf_counter()
    params_per_rank, trace = capture_run(
        uniform_cluster(WORLD), prog, world_size=WORLD, materialize=True
    )
    trace.axes = derive_axis_groups(WORLD, tensor=TPD, pipeline=PPD)
    print(
        f"captured {trace.event_count()} events over {trace.world_size} "
        f"ranks (DP 4 x TP {TPD} x PP {PPD}) "
        f"in {time.perf_counter() - t0:.2f}s wall"
    )

    # widening dp 8x shards ZeRO-1 optimizer state (fp32 master + m + v)
    # of each rank's parameters across the wider replica group
    zero1 = zero_partitioned_bytes(max(params_per_rank), stage=1)
    plan = hybrid_plan(
        FACTORS, world=WORLD, tensor=TPD, pipeline=PPD,
        sharded_bytes={"dp": zero1},
    )
    t0 = time.perf_counter()
    rep = project(trace, plan=plan,
                  fabric=Fabric.from_cluster(system_iii(n_nodes=2)))
    wall = time.perf_counter() - t0

    print(f"\nprojected to {rep.target_world} ranks "
          f"({wall:.3f}s wall):")
    print(rep.format())

    assert rep.target_world == 512
    axes = {a.name: a for a in rep.axes}
    assert axes["tp"].projected_degree == TPD * FACTORS["tp"]
    assert axes["pp"].chain and axes["pp"].by_op_bytes.get("p2p", 0) > 0
    # ZeRO-1 sharding along the widened dp axis shrinks the peak below a
    # plain (unsharded) projection of the same capture
    plain = project(trace,
                    plan=hybrid_plan(FACTORS, world=WORLD,
                                     tensor=TPD, pipeline=PPD),
                    fabric=Fabric.from_cluster(system_iii(n_nodes=2)))
    assert rep.peak_memory_bytes < plain.peak_memory_bytes
    print(
        f"\nZeRO-1 dp sharding: peak {plain.peak_memory_bytes:,} B "
        f"-> {rep.peak_memory_bytes:,} B "
        f"({zero1:,} B of optimizer state partitioned 8x)"
    )
    print("hybrid 16 -> 512 projection verified "
          "(per-axis breakdown + sharded memory)")


if __name__ == "__main__":
    main()
