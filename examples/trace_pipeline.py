"""Timeline tracing: see the pipeline bubble with your own eyes.

Runs a deliberately imbalanced 4-stage GPipe pipeline (stage 0 carries 4x
the layers of the others) with a :class:`repro.trace.Tracer` attached,
prints the per-rank time breakdown + top-collectives report, and writes a
Chrome-trace JSON you can open in ``chrome://tracing`` or
https://ui.perfetto.dev — one lane per rank, with per-microbatch
``fwd/mb*``/``bwd/mb*`` spans and ``*_stall`` bubble spans in between.

Run:  python examples/trace_pipeline.py
"""

import numpy as np

import repro
from repro.cluster import uniform_cluster
from repro.nn import Linear, Module, ModuleList
from repro.parallel.pipeline import GPipeSchedule
from repro.tensor import Tensor
from repro.trace import Tracer, TraceReport, save_chrome_trace

STAGES = 4
MICRO = 4
WIDTH = 16
DEPTHS = [8, 2, 2, 2]  # imbalanced on purpose: stage 0 is the straggler
BATCH = 8
rng = np.random.default_rng(0)
X = rng.standard_normal((BATCH, WIDTH)).astype("float32")


class Stage(Module):
    def __init__(self, depth):
        super().__init__()
        self.layers = ModuleList([Linear(WIDTH, WIDTH) for _ in range(depth)])

    def forward(self, x):
        for l in self.layers:
            x = l(x)
        return x


def main():
    config = dict(parallel=dict(pipeline=STAGES), num_microbatches=MICRO)
    tracer = Tracer()

    def train(ctx, pc):
        stage = Stage(DEPTHS[pc.pp_rank])
        sched = GPipeSchedule(pc, MICRO)
        sched.run(
            stage,
            X if pc.is_first_pipeline_stage() else None,
            None,
            (lambda out, y: out.sum()) if pc.is_last_pipeline_stage() else None,
        )
        return ctx.clock.time

    repro.launch(config, uniform_cluster(STAGES), train,
                 world_size=STAGES, tracer=tracer)

    report = TraceReport.from_tracer(tracer)
    print(report.format())
    path = save_chrome_trace(tracer, "trace_pipeline.json")
    print(f"\nChrome trace written to {path} "
          "(open in chrome://tracing or ui.perfetto.dev)")
    assert report.bubble_fraction() > 0.0, "imbalanced pipeline must stall"
    print("downstream stages stall waiting on the fat stage 0 — "
          "that idle time is the bubble")


if __name__ == "__main__":
    main()
