"""Cost-driven collective algorithm selection on System II.

System II (Fig 9b) is the asymmetric fabric: adjacent GPU pairs share full
NVLink, everything else crosses PCIe.  A flat ring over all 8 GPUs is
throttled to the PCIe floor, which is exactly what the paper's Fig 10/11
hardware-compatibility experiments measure.  With ``comm.algorithm="auto"``
the communicator prices every call under ring / tree / hierarchical
schedules and picks the cheapest:

* tiny gradients -> recursive halving-doubling (*tree*): O(log p) steps;
* big gradients  -> *hierarchical*: reduce-scatter inside each NVLink
  island, exchange the shards over PCIe once, allgather back inside the
  islands.

This script prints the per-size crossover table, then runs a traced
spec-mode allreduce sequence so you can see the chosen ``algo=`` on each
collective span and the by-algorithm wire accounting.

Run:  PYTHONPATH=src python examples/algo_selection.py
"""

from repro.comm import CostModel, Communicator, SpecArray
from repro.cluster import system_ii
from repro.runtime import SpmdRuntime
from repro.trace import TraceReport, Tracer
from repro.utils.units import KB, MB, format_bytes

RANKS = list(range(8))

# -- 1. the crossover table -------------------------------------------------

print("=== System II, 8-GPU allreduce: cost per algorithm ===\n")
model = CostModel(system_ii())
sizes = [16 * KB, 256 * KB, MB, 2 * MB, 4 * MB, 16 * MB, 64 * MB, 125 * MB]
header = f"{'payload':>10} | {'ring':>10} | {'tree':>10} | {'hierarchical':>12} | chosen"
print(header)
print("-" * len(header))
for nbytes in sizes:
    per_algo = {
        algo: model.allreduce(RANKS, nbytes, algorithm=algo)
        for algo in ("ring", "tree", "hierarchical")
    }
    auto = model.allreduce(RANKS, nbytes, algorithm="auto")
    cells = " | ".join(
        f"{per_algo[a].seconds * 1e6:8.1f}us"
        + (" " * (12 - 10) if a == "hierarchical" else "")
        for a in ("ring", "tree", "hierarchical")
    )
    print(f"{format_bytes(nbytes):>10} | {cells} | {auto.algorithm}")

speed = (
    model.allreduce(RANKS, 64 * MB, algorithm="ring").seconds
    / model.allreduce(RANKS, 64 * MB, algorithm="auto").seconds
)
print(f"\n64 MiB speedup over the flat ring: {speed:.2f}x")

# -- 2. a traced run --------------------------------------------------------

print("\n=== Traced spec-mode run (one small + one large allreduce) ===\n")
tracer = Tracer()
rt = SpmdRuntime(system_ii(), comm_algorithm="auto", tracer=tracer)


def prog(ctx):
    comm = Communicator.world(ctx)
    # a LayerNorm-sized gradient and a fused gradient bucket
    comm.all_reduce(SpecArray((4096,), "float32"))
    comm.all_reduce(SpecArray((16, 1024, 1024), "float32"))
    return ctx.clock.time


rt.run(prog, materialize=False)

spans = [s for s in tracer.spans(cat="collective") if s.args.get("primary")]
for s in spans:
    print(
        f"  rank {s.rank}: {s.name:<12} algo={s.args['algo']:<13} "
        f"wire={format_bytes(s.args['wire_bytes'])} "
        f"dt={(s.t1 - s.t0) * 1e6:.1f}us"
    )

counters = rt.world_group.counters
print("\nby-algorithm wire bytes:")
for algo, nbytes in sorted(counters.by_algorithm_bytes.items()):
    calls = counters.by_algorithm_calls[algo]
    print(f"  {algo:<13} {calls} call(s), {format_bytes(nbytes)}")

print("\n=== TraceReport excerpt ===\n")
print(TraceReport.from_tracer(tracer).format(topk=3))
