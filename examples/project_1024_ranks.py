"""Projection execution mode: capture at 8 ranks, project to 1024.

The threaded SPMD runtime needs a host thread per simulated rank, which
caps it around a few dozen ranks.  ``repro.project`` splits *what ops
happen per rank* from *who executes them*: :func:`capture_run` records
each rank's op stream (spec-mode compute advances, priced collectives,
comm-stream issue/wait events) during one real run, and :func:`project`
replays that stream analytically — no threads — either

* in ``recorded`` mode, reproducing the captured run's step time, clock
  breakdowns and wire counters bit-for-bit (the fidelity contract
  ``pytest -m projection`` enforces), or
* in ``model`` mode, re-pricing every transfer through a closed-form
  :class:`Fabric` with the data-parallel world widened by an integer
  factor — an 8-rank capture answers "what would this step cost on 1024
  GPUs?" in well under a second.

This script captures a GPT-style DDP training step (overlap on) at 8
ranks, verifies the recorded replay matches the capture exactly, then
projects it to 64 / 256 / 1024 ranks on a System-III-like fabric and
prints step time, comm volume and the hidden-comm fraction at each scale.

Run:  PYTHONPATH=src python examples/project_1024_ranks.py
"""

import time

from repro.autograd import checkpoint
from repro.cluster import system_iii, uniform_cluster
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext
from repro.nn import TransformerLayer
from repro.nn.module import Module
from repro.parallel.data import DistributedDataParallel
from repro.project import Fabric, capture_run, project
from repro.tensor import Tensor

WORLD, LAYERS, HIDDEN, HEADS = 8, 4, 1024, 16
BATCH_PER_RANK, SEQ = 4, 256


class GPT(Module):
    def __init__(self):
        super().__init__()
        for i in range(LAYERS):
            setattr(self, f"layer{i}", TransformerLayer(HIDDEN, HEADS, dtype="float16"))

    def forward(self, x):
        for i in range(LAYERS):
            x = checkpoint(getattr(self, f"layer{i}"), x)
        return x


def prog(ctx):
    pc = ParallelContext(ctx, Config.from_dict({}))
    ddp = DistributedDataParallel(GPT(), pc, overlap=True)
    x = Tensor(
        SpecArray((BATCH_PER_RANK, SEQ, HIDDEN), "float16"),
        requires_grad=True,
    )
    ddp(x).sum().backward()
    ddp.sync()


def main():
    t0 = time.perf_counter()
    _results, trace = capture_run(
        uniform_cluster(WORLD), prog, world_size=WORLD, comm_overlap=True
    )
    print(
        f"captured {trace.event_count()} events over {trace.world_size} ranks "
        f"in {time.perf_counter() - t0:.2f}s wall"
    )

    # recorded replay: same numbers as the threaded run, zero threads
    recorded = project(trace, mode="recorded")
    assert recorded.step_time == trace.max_time
    print(f"recorded replay step time {recorded.step_time:.4f}s (== capture)\n")

    # model replay: widen the data-parallel world on a two-level fabric
    fabric = Fabric.from_cluster(system_iii(n_nodes=2))
    for target in (64, 256, 1024):
        t0 = time.perf_counter()
        rep = project(trace, factor=target // WORLD, fabric=fabric)
        wall = time.perf_counter() - t0
        print(f"projected to {rep.target_world} ranks ({wall:.3f}s wall):")
        print(rep.format())
        print()


if __name__ == "__main__":
    main()
