"""Hybrid parallelism: pipeline x tensor parallel training (§3.1 "hybrid
parallelism is available out of the box").

Splits a small GPT across 2 pipeline stages, with each stage's layers 1D
tensor-parallel over 2 ranks (4 simulated GPUs total), runs microbatched
GPipe training, and checks the loss matches pure serial training.

Run:  python examples/pipeline_hybrid.py
"""

import numpy as np

import repro
from repro.cluster import uniform_cluster
from repro.context import ParallelMode
from repro.models import GPTConfig
from repro.models.common import crng
from repro.nn import CrossEntropyLoss, LayerNorm, Linear, Module, ModuleList, Embedding
from repro.nn import init as init_mod
from repro.nn.module import Parameter
from repro.nn.transformer import TransformerLayer
from repro.parallel.pipeline import GPipeSchedule, partition_uniform
from repro.parallel.tensor1d import ParallelTransformerLayer1D
from repro.autograd import ops
from repro.tensor import Tensor

CFG = GPTConfig(vocab_size=64, hidden_size=32, n_layers=4, n_heads=4,
                seq_len=16, mlp_ratio=2, dtype="float32", seed=21)
MICROBATCHES = 4
rng_data = np.random.default_rng(1)
IDS = rng_data.integers(0, CFG.vocab_size, (8, CFG.seq_len))
TARGETS = rng_data.integers(0, CFG.vocab_size, (8, CFG.seq_len))


class Stage(Module):
    """One pipeline stage: embeddings on the first, head on the last,
    1D-tensor-parallel transformer layers in between."""

    def __init__(self, layer_range, is_first, is_last, tensor_comm):
        super().__init__()
        self.is_first = is_first
        self.is_last = is_last
        if is_first:
            self.token_emb = Embedding(CFG.vocab_size, CFG.hidden_size,
                                       rng=crng(CFG.seed, 0))
            self.pos_emb = Parameter(init_mod.param_payload(
                (CFG.seq_len, CFG.hidden_size), init_mod.normal(0.02),
                crng(CFG.seed, 1), CFG.dtype))
        if tensor_comm is None:
            self.layers = ModuleList([
                TransformerLayer(CFG.hidden_size, CFG.n_heads, CFG.mlp_ratio,
                                 causal=True, rng=crng(CFG.seed, 2 + i))
                for i in layer_range
            ])
        else:
            self.layers = ModuleList([
                ParallelTransformerLayer1D(CFG.hidden_size, CFG.n_heads, tensor_comm,
                                           CFG.mlp_ratio, causal=True,
                                           rng=crng(CFG.seed, 2 + i))
                for i in layer_range
            ])
        if is_last:
            self.norm = LayerNorm(CFG.hidden_size, rng=crng(CFG.seed, 1000))
            self.head = Linear(CFG.hidden_size, CFG.vocab_size, bias=False,
                               weight_init=init_mod.lecun_normal(),
                               rng=crng(CFG.seed, 1001))

    def forward(self, x):
        if self.is_first:
            x = ops.add(self.token_emb(x), self.pos_emb)
        for layer in self.layers:
            x = layer(x)
        if self.is_last:
            x = self.head(self.norm(x))
        return x


def serial_loss():
    stage = Stage(range(CFG.n_layers), True, True, None)
    crit = CrossEntropyLoss()
    loss = crit(stage(Tensor(IDS)), TARGETS)
    return loss.item()


def hybrid_losses():
    config = dict(
        parallel=dict(tensor=dict(size=2, mode="1d"), pipeline=2),
        num_microbatches=MICROBATCHES,
    )

    def train(ctx, pc):
        ranges = partition_uniform(CFG.n_layers, pc.pipeline_size)
        s, e = ranges[pc.pp_rank]
        stage = Stage(
            range(s, e),
            pc.is_first_pipeline_stage(),
            pc.is_last_pipeline_stage(),
            pc.comm(ParallelMode.TENSOR),
        )
        sched = GPipeSchedule(pc, MICROBATCHES)
        crit = CrossEntropyLoss()
        loss = sched.run(
            stage,
            IDS if pc.is_first_pipeline_stage() else None,
            TARGETS if pc.is_last_pipeline_stage() else None,
            crit,
        )
        return loss, ctx.clock.time

    return repro.launch(config, uniform_cluster(4), train, world_size=4)


if __name__ == "__main__":
    ref = serial_loss()
    results = hybrid_losses()
    pipeline_loss = next(l for l, _ in results if l is not None)
    times = [t for _, t in results]
    print(f"serial loss:           {ref:.6f}")
    print(f"pipeline x tensor loss: {pipeline_loss:.6f}")
    print(f"per-rank simulated times (bubble visible): "
          f"{['%.1fus' % (t*1e6) for t in times]}")
    assert abs(ref - pipeline_loss) < 1e-4
    print("hybrid pipeline+tensor training matches serial (4 GPUs = 2 stages x 2-way TP)")
