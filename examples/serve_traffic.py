"""Serving under traffic: the load knee, determinism, and rank loss.

Serves a small GPT-style decoder on a 2-rank tensor-parallel replica
(simulated) three ways:

1. a closed-loop capacity probe (32 zero-think clients) that measures
   the replica's saturated service rate,
2. an open-loop Poisson sweep at 0.5x / 1.0x / 2.0x that capacity —
   goodput saturates while p99 TTFT blows up past the knee, and the
   same seed reproduces the identical report bit for bit,
3. the near-knee workload with rank 1 killed mid-run — the engine
   records a typed failure, charges recovery downtime, replays the lost
   KV work, and the report prices the SLO hit instead of crashing.

Run:  python examples/serve_traffic.py
"""

from repro.faults import FaultPlan
from repro.serve import (
    ClosedLoopTraffic,
    ModelSpec,
    OpenLoopTraffic,
    serve_traffic,
)

WORLD = 2
MODEL = ModelSpec(n_layers=4, hidden=1024, n_heads=16)
LENGTHS = dict(prompt_tokens=(16, 64), max_new_tokens=(8, 32))
KNOBS = dict(world_size=WORLD, max_batch_tokens=256, kv_blocks=192)

if __name__ == "__main__":
    # 1) capacity probe: self-throttling clients saturate the replica
    probe = serve_traffic(
        MODEL, ClosedLoopTraffic(clients=32, n_requests=128, seed=7,
                                 **LENGTHS),
        **KNOBS)
    capacity = probe.completed_per_sec
    print(f"capacity probe: {probe.goodput_tokens_per_sec:.0f} tok/s "
          f"({capacity:.0f} req/s) at 32 closed-loop clients\n")

    # 2) open-loop sweep around the knee
    reports = {}
    for mult in (0.5, 1.0, 2.0):
        traffic = OpenLoopTraffic(rate=capacity * mult, n_requests=128,
                                  seed=11, **LENGTHS)
        rep = serve_traffic(MODEL, traffic, **KNOBS)
        reports[mult] = rep
        print(f"--- offered {mult:g}x capacity ---")
        print(rep.format())
    under, mid, over = reports[0.5], reports[1.0], reports[2.0]
    assert over.p99_ttft > under.p99_ttft, "no queueing delay past the knee"
    # offered load doubled from 1.0x to 2.0x; saturating goodput cannot
    assert over.goodput_tokens_per_sec < 2.0 * mid.goodput_tokens_per_sec, \
        "goodput kept scaling with offered load — never saturated"
    print("\nknee confirmed: p99 TTFT "
          f"{under.p99_ttft * 1e3:.2f}ms -> {over.p99_ttft * 1e3:.2f}ms, "
          "goodput saturating")

    # same seed, same report — scheduling is bitwise deterministic
    again = serve_traffic(
        MODEL, OpenLoopTraffic(rate=capacity * 2.0, n_requests=128,
                               seed=11, **LENGTHS),
        **KNOBS)
    assert again.to_dict() == over.to_dict(), "per-seed determinism broke"
    print("rerun with the same seed is bitwise identical. OK\n")

    # 3) rank loss mid-serving: priced, not fatal
    base = reports[1.0]
    plan = FaultPlan(seed=3).crash(1, at_time=base.makespan * 0.4)
    faulted = serve_traffic(
        MODEL, OpenLoopTraffic(rate=capacity, n_requests=128, seed=11,
                               **LENGTHS),
        fault_plan=plan, recovery_seconds=base.makespan * 0.15, **KNOBS)
    print("--- rank 1 lost at 0.4x makespan ---")
    print(faulted.format())
    assert faulted.restarts == 1 and faulted.failures, "crash not recorded"
    assert faulted.n_completed == base.n_completed, "requests were dropped"
    assert faulted.p99_ttft > base.p99_ttft, "rank loss priced nothing"
    retained = faulted.goodput_tokens_per_sec / base.goodput_tokens_per_sec
    print(f"\nrank loss priced: goodput retained {retained:.1%}, "
          f"p99 TTFT {base.p99_ttft * 1e3:.2f}ms -> "
          f"{faulted.p99_ttft * 1e3:.2f}ms, "
          f"all {faulted.n_completed} requests completed. OK")
