"""Auto-parallel strategy compiler (§3.3 / §6 of the paper).

Demonstrates `repro.autopar.compile_strategy` end to end:

1. compile a GPT-scale workload on System I and System II and show the
   scoring trail — hundreds of candidates priced analytically, the
   shortlist refined through simulated skeleton probes;
2. verify the refined prediction against an **independent threaded
   simulation** — in recorded mode they match bit-for-bit;
3. pin the paper's Fig-11 hardware-dependent mode switch: the same
   t=4 tensor degree prefers 1D on System I (uniform intra-node links)
   but 2D on System II (NVLink pairs + PCIe cross-pair traffic);
4. show memory pressure steering the search: a workload that cannot fit
   under plain data parallelism compiles to a ZeRO-sharded plan;
5. run the compiled plan declaratively via an ``autopar:`` config
   section — ``launch`` resolves the strategy before dispatch.

Run:  python examples/compile_strategy.py
"""

from repro.autopar import (
    StrategyCandidate,
    Workload,
    compile_strategy,
    refine_candidate,
    score_candidate,
    simulate_candidate,
)
from repro.cluster import system_i, system_ii, uniform_cluster

WORK = Workload(n_layers=16, hidden=3072, n_heads=48, seq_len=196)


def demo_compile():
    print("=== compile_strategy on System I / System II ===")
    for name, mk in (("system_i", system_i), ("system_ii", system_ii)):
        compiled = compile_strategy(mk(), WORK, 256, world_size=8)
        print(f"\n--- {name} ---")
        print(compiled.report.format(limit=6))
    print()


def demo_parity():
    print("=== refined prediction == threaded simulation ===")
    cluster = system_i()
    compiled = compile_strategy(cluster, WORK, 256, world_size=8)
    sim = simulate_candidate(cluster, WORK, compiled.candidate, 256)
    print(f"predicted {compiled.predicted_step_seconds:.6f}s / "
          f"simulated {sim:.6f}s")
    assert compiled.predicted_step_seconds == sim  # bit-for-bit (recorded)
    print("recorded-mode prediction matches the threaded run exactly\n")


def demo_fig11():
    print("=== Fig-11 mode switch (t=4, dp=2) ===")
    chosen = {}
    for name, mk in (("system_i", system_i), ("system_ii", system_ii)):
        cluster = mk()
        times = {}
        for mode in ("1d", "2d"):
            cand = StrategyCandidate(
                data=2, tensor=4, mode=mode, pipeline=1, algorithm="auto")
            score = score_candidate(cluster, WORK, cand, 256)
            times[mode] = refine_candidate(
                cluster, WORK, cand, 256, score).step_seconds
        chosen[name] = min(times, key=times.get)
        print(f"{name}: " + ", ".join(
            f"{m}={t:.3f}s" for m, t in times.items())
            + f" -> {chosen[name]}")
    assert chosen == {"system_i": "1d", "system_ii": "2d"}
    print("same workload, different winner per machine — as in the paper\n")


def demo_memory_pressure():
    print("=== memory pressure -> ZeRO-sharded plan ===")
    from repro.analytic import transformer_param_count

    big = Workload(n_layers=24, hidden=2048, n_heads=16, seq_len=128)
    params = transformer_param_count(
        big.n_layers, big.hidden, mlp_ratio=big.mlp_ratio)
    compiled = compile_strategy(
        uniform_cluster(8, memory_gb=16), big, 64, refine=False)
    cand = compiled.candidate
    print(f"{cand.describe()}  "
          f"(~{params / 1e9:.1f}B params, 16 GiB devices)")
    assert cand.zero_stage > 0 or cand.tensor > 1 or cand.pipeline > 1
    rejected = compiled.report.rejection_counts()
    print(f"rejected: {dict(rejected)}\n")


def demo_launch_wiring():
    print("=== declarative: autopar config section ===")
    import repro

    seen = []

    def train(ctx, pc):
        seen.append((pc.data_size, pc.tensor_size, pc.pipeline_size))
        return True

    cfg = {"autopar": {
        "workload": {"n_layers": 16, "hidden": 3072, "n_heads": 48,
                     "seq_len": 196},
        "global_batch": 256,
        "refine": False,
    }}
    assert all(repro.launch(cfg, system_i(), train, world_size=8))
    print(f"launch compiled and ran: dp x tp x pp = {seen[0]}")


if __name__ == "__main__":
    demo_compile()
    demo_parity()
    demo_fig11()
    demo_memory_pressure()
    demo_launch_wiring()
