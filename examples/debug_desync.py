"""Debugging desyncs with the SPMD sanitizer.

Three acts on 4 simulated GPUs:

1. A *desynchronized* program — rank 2 computes a differently-shaped
   gradient bucket, so its ``all_reduce`` disagrees with everyone else's.
   Without the sanitizer this would be a shape error deep inside the
   reduction (or, for a skipped call, a hang until ``deadlock_timeout``);
   with it, ``CollectiveMismatch`` names the guilty rank and the exact
   source line within one rendezvous.
2. A *skipped* collective — rank 1 returns early.  The sanitizer
   diagnoses the exit and raises ``CollectiveDesync`` instead of letting
   the other ranks wait.
3. *Record/replay* — a clean run's op stream is saved as a golden file;
   a "refactored" run that drifts is pinpointed at the first divergent
   (rank, step, op).

Run:  python examples/debug_desync.py
"""

import numpy as np

from repro.cluster import system_i
from repro.comm.communicator import Communicator
from repro.runtime import SpmdRuntime
from repro.runtime.errors import RemoteRankError
from repro.sanitize import (
    CollectiveDesync,
    CollectiveMismatch,
    CommSanitizer,
    ReplayDivergence,
    first_divergence,
)

WORLD = 4
cluster = system_i()


# -- act 1: mismatched collective ------------------------------------------

def mismatched_training_step(ctx):
    comm = Communicator.world(ctx)
    # rank 2 "forgot" a weight-tying fix: its bucket has the wrong size
    bucket = np.ones(6 if ctx.rank == 2 else 8, dtype=np.float32)
    return comm.all_reduce(bucket, op="sum")


print("=== 1. mismatched all_reduce ===")
rt = SpmdRuntime(cluster, WORLD, sanitize=CommSanitizer())
try:
    rt.run(mismatched_training_step)
    raise SystemExit("expected a CollectiveMismatch")
except RemoteRankError as e:
    assert isinstance(e.cause, CollectiveMismatch)
    assert e.cause.divergent_ranks == (2,)
    print(f"caught: {e.cause}\n")


# -- act 2: skipped collective ---------------------------------------------

def skipping_program(ctx):
    comm = Communicator.world(ctx)
    comm.barrier()
    if ctx.rank == 1:
        return "rank 1 bailed"  # skips the final all_reduce
    return comm.all_reduce(np.ones(4))


print("=== 2. skipped collective (would hang without the sanitizer) ===")
rt = SpmdRuntime(cluster, WORLD, sanitize=CommSanitizer(),
                 deadlock_timeout=600.0)  # sanitizer fires long before this
try:
    rt.run(skipping_program)
    raise SystemExit("expected a CollectiveDesync")
except RemoteRankError as e:
    assert isinstance(e.cause, CollectiveDesync)
    assert e.cause.missing_ranks == (1,)
    print(f"caught: {e.cause}\n")


# -- act 3: record / replay -------------------------------------------------

def clean_program(ctx):
    comm = Communicator.world(ctx)
    x = np.full(4, float(ctx.rank + 1), dtype=np.float32)
    total = comm.all_reduce(x)
    return comm.broadcast(total if ctx.rank == 0 else np.zeros_like(total),
                          root=0).sum()


def refactored_program(ctx):
    comm = Communicator.world(ctx)
    x = np.full(4, float(ctx.rank + 1), dtype=np.float32)
    total = comm.all_reduce(x)
    # the "refactor" swapped the broadcast for a redundant all_reduce
    return comm.all_reduce(total).sum()


print("=== 3. record a golden run, replay the refactor against it ===")
recorder = CommSanitizer(checksum=True)
rt = SpmdRuntime(cluster, WORLD, sanitize=recorder)
baseline = rt.run(clean_program)
recorder.save_golden("desync_golden.json")
print(f"recorded {sum(recorder.summary()['stream_lengths'].values())} ops "
      f"across {WORLD} ranks -> desync_golden.json")

rt = SpmdRuntime(cluster, WORLD, sanitize=CommSanitizer(
    checksum=True, replay="desync_golden.json"))
try:
    rt.run(refactored_program)
    raise SystemExit("expected a ReplayDivergence")
except RemoteRankError as e:
    assert isinstance(e.cause, ReplayDivergence)
    assert e.cause.step == 1
    print(f"caught: {e.cause}")

# the offline diff agrees with the live verdict
drifted = CommSanitizer(checksum=True)
SpmdRuntime(cluster, WORLD, sanitize=drifted).run(refactored_program)
div = first_divergence(recorder.golden(), drifted.golden())
assert div is not None and div.step == 1
print(f"offline diff agrees: first divergence at rank {div.rank} "
      f"step {div.step}")

# and the recording replays clean against an identical run
SpmdRuntime(cluster, WORLD, sanitize=CommSanitizer(
    checksum=True, replay="desync_golden.json")).run(clean_program)
print(f"clean program conforms to its golden (baseline result "
      f"{baseline[0]:.1f})")

print("\nall three desync classes caught with typed, rank-attributed errors")
