"""Heterogeneous training of GPT-2 10B with ZeRO-3 sharding + offloading
(§5.4 / Fig 14 of the paper).

Runs one spec-mode training step of a 10-billion-parameter GPT-2 on the
simulated System II (8x A100-80GB) under three placement policies:

* ``none``     — plain ZeRO-3, everything on the GPU
* ``static``   — DeepSpeed-style: all shards + optimizer states pinned on
  the host, PCIe traffic every step
* ``adaptive`` — Colossal-AI: keep chunks on the GPU while memory allows

Run:  python examples/gpt_zero_offload.py
"""

from repro.cluster import system_ii
from repro.comm import Communicator, SpecArray
from repro.comm.cost import CostModel
from repro.models import build_gpt_blocks, gpt2_10b
from repro.runtime import SpmdRuntime
from repro.utils.units import GB
from repro.zero import AdaptivePolicy, StaticPolicy, ZeroOffloadEngine
from repro.zero.policies import NoOffloadPolicy

BATCH = 4
CFG = gpt2_10b(seq_len=1024)

POLICIES = {
    "none": NoOffloadPolicy,
    "static": StaticPolicy,
    "adaptive": AdaptivePolicy,
}


def run_policy(name, n_gpus=8):
    cluster = system_ii()
    rt = SpmdRuntime(cluster, world_size=n_gpus)

    def prog(ctx):
        comm = Communicator.world(ctx)
        blocks, criterion = build_gpt_blocks(CFG)
        kwargs = dict(activation_headroom=10 * GB) if name == "adaptive" else {}
        policy = POLICIES[name](
            ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank, **kwargs
        )
        engine = ZeroOffloadEngine(
            ctx, blocks, comm, policy, criterion=criterion, chunk_mb=64, lr=1e-4
        )
        ids = SpecArray((BATCH, CFG.seq_len), "int64")
        engine.train_step(ids, ids)  # warm-up (policy placement settles)
        t0 = ctx.clock.time
        engine.train_step(ids, ids)
        step_time = ctx.clock.time - t0
        return (
            step_time,
            engine.gpu_param_fraction(),
            ctx.device.memory.peak / GB,
            ctx.cpu.memory.peak / GB,
        )

    try:
        res = rt.run(prog, materialize=False)
    except Exception as e:  # plain ZeRO-3 may OOM — that is the point
        return None, str(type(e.cause).__name__ if hasattr(e, "cause") else e)
    return res[0], None


if __name__ == "__main__":
    print(f"GPT-2 {CFG.param_count()/1e9:.1f}B, batch {BATCH}/GPU, 8x A100-80GB (System II)\n")
    print(f"{'policy':10s} {'step(s)':>8s} {'samples/s':>10s} {'gpu-res%':>9s} "
          f"{'gpu peak':>9s} {'cpu peak':>9s}")
    times = {}
    for name in POLICIES:
        result, err = run_policy(name)
        if result is None:
            print(f"{name:10s} {'OOM' if 'Memory' in err else err:>8s}")
            continue
        dt, frac, gpeak, cpeak = result
        times[name] = dt
        print(
            f"{name:10s} {dt:8.2f} {8*BATCH/dt:10.2f} {100*frac:8.0f}% "
            f"{gpeak:8.1f}G {cpeak:8.1f}G"
        )
    if "static" in times and "adaptive" in times:
        print(f"\nadaptive placement speedup over static offload: "
              f"{times['static']/times['adaptive']:.2f}x  (Fig 14 shape)")
