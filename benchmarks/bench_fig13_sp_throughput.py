"""Fig 13: training throughput of BERT-Base — sequence parallelism vs 1D
tensor parallelism (System III).

(a) throughput at sequence length 512 and each mode's maximum batch size
(the paper's protocol: bigger batches amortize communication, so SP's
memory headroom converts into speed — up to 1.43x).

(b) composition with pipeline parallelism: parallel size fixed at 4,
pipeline stages 1 -> 4.  SP passes ``[B, S/4, H]`` activations between
stages while 1D passes the full ``[B, S, H]``, so SP's advantage grows
with stages (paper: 1.55x at 4 stages).
"""

import pytest

import repro
from repro.cluster import system_iii
from repro.comm.payload import SpecArray
from repro.context import ParallelMode
from repro.models.bert import bert_base
from repro.models.common import crng
from repro.nn import ModuleList, Module
from repro.parallel.pipeline import GPipeSchedule, partition_uniform
from repro.parallel.sequence import SequenceParallelTransformerLayer
from repro.parallel.tensor1d import ParallelTransformerLayer1D
from repro.tensor import Tensor

BERT = bert_base(seq_len=512)
N_LAYERS = 6  # 12 -> 6 to keep the simulation quick; ratios are per-layer
MICRO = 4


class _Stage(Module):
    def __init__(self, mode, pc, layer_range):
        super().__init__()
        if mode == "1d":
            comm = pc.comm(ParallelMode.TENSOR)
            mk = lambda i: ParallelTransformerLayer1D(
                BERT.hidden_size, BERT.n_heads, comm, dtype="float16",
            )
        else:
            comm = pc.comm(ParallelMode.SEQUENCE)
            mk = lambda i: SequenceParallelTransformerLayer(
                BERT.hidden_size, BERT.n_heads, comm, dtype="float16",
            )
        self.layers = ModuleList([mk(i) for i in layer_range])

    def forward(self, x):
        for l in self.layers:
            x = l(x)
        return x


def _local_x(mode, batch, seq_group):
    seq = BERT.seq_len if mode == "1d" else BERT.seq_len // seq_group
    return SpecArray((batch, seq, BERT.hidden_size), "float16")


def step_time(mode, batch, pp_stages=1, tracer=None, runtime=None):
    world = 4 * pp_stages
    config = dict(
        parallel=dict(tensor=dict(size=4, mode="sequence" if mode == "sp" else "1d"),
                      pipeline=pp_stages),
        num_microbatches=MICRO if pp_stages > 1 else 1,
    )

    def prog(ctx, pc):
        mname = "1d" if mode == "1d" else "sequence"
        s, e = partition_uniform(N_LAYERS, pp_stages)[pc.pp_rank]
        stage = _Stage(mname, pc, range(s, e))
        x = _local_x(mname, batch, 4)
        t0 = ctx.clock.time
        if pp_stages == 1:
            xt = Tensor(x, requires_grad=True)
            stage(xt).sum().backward()
        else:
            sched = GPipeSchedule(pc, MICRO)
            sched.run(
                stage,
                x if pc.is_first_pipeline_stage() else None,
                None,
                (lambda out, y: out.sum()) if pc.is_last_pipeline_stage() else None,
            )
        return ctx.clock.time - t0

    res = repro.launch(
        config, system_iii(n_nodes=max(1, world // 4)), prog,
        world_size=world, materialize=False,
        runtime=runtime, tracer=tracer,
    )
    return max(res)


class TestFig13:
    def test_throughput_at_max_batch(self, benchmark, record_rows):
        # max batches from the Fig 12a search (rounded to microbatch-friendly)
        batches = {"1d": 172, "sp": 308}

        def run():
            return {m: (b, b / step_time(m, b)) for m, b in batches.items()}

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        ratio = res["sp"][1] / res["1d"][1]
        rows = [[m, b, thr] for m, (b, thr) in res.items()]
        record_rows(
            "Fig 13a: BERT throughput at max batch, seq 512, 4 GPUs (samples/s)",
            ["mode", "batch", "throughput"],
            rows,
            notes=f"SP/1D throughput ratio: {ratio:.2f}x (paper: up to 1.43x)",
        )
        assert ratio > 1.0

    def test_pipeline_composition(self, benchmark, record_rows):
        # each mode trains at its own max batch, as throughout the paper's
        # §5.3 (divisible by the microbatch count)
        batches = {"1d": 172, "sp": 308}

        def run():
            out = {}
            for stages in (1, 2, 4):
                for m in ("1d", "sp"):
                    out[(m, stages)] = batches[m] / step_time(m, batches[m], stages)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for stages in (1, 2, 4):
            ratio = res[("sp", stages)] / res[("1d", stages)]
            rows.append(
                [stages, res[("1d", stages)], res[("sp", stages)], f"{ratio:.2f}x"]
            )
        record_rows(
            "Fig 13b: BERT throughput, parallel size 4 x pipeline stages (samples/s)",
            ["pipeline stages", "1D TP", "sequence", "SP/1D"],
            rows,
            notes="SP sends S/4-length activations between stages (no split/"
            "gather), so its edge grows with stages (paper: 1.55x at 4)",
        )
        r1 = res[("sp", 1)] / res[("1d", 1)]
        r4 = res[("sp", 4)] / res[("1d", 4)]
        assert r4 > 1.0
        assert r4 >= r1 * 0.95  # the advantage persists or grows with stages


@pytest.mark.trace
class TestFig13Traced:
    """Fig 13b step with the tracer attached: the trace must be a lossless
    refinement of the clock end-state, the pipeline bubble must be visible,
    and the Chrome export must be loadable."""

    def test_traced_step_reconciles_and_exports(self, tmp_path):
        import json

        from repro.runtime import SpmdRuntime
        from repro.trace import Tracer, TraceReport, save_chrome_trace

        stages = 2
        world = 4 * stages
        rt = SpmdRuntime(system_iii(n_nodes=world // 4), world)
        tracer = Tracer()
        step_time("sp", 16, pp_stages=stages, tracer=tracer, runtime=rt)

        # per-rank clock-span sums reconcile with SimClock.breakdown()
        for rank in range(world):
            traced = tracer.clock_breakdown(rank)
            actual = rt.clocks[rank].breakdown()
            for cat in ("compute", "comm", "wait"):
                assert traced.get(cat, 0.0) == pytest.approx(
                    actual.get(cat, 0.0), rel=1e-9, abs=1e-12
                ), f"rank {rank} {cat} diverges from clock breakdown"

        report = TraceReport.from_tracer(tracer)
        assert report.bubble_fraction() > 0.0  # GPipe warm-up/drain stalls
        # ring self-attention shows up as ring_pass rounds with wire bytes
        assert "ring_pass" in report.collectives
        assert report.collectives["ring_pass"].wire_bytes > 0
        assert "bubble fraction" in report.format()

        path = tmp_path / "fig13_trace.json"
        save_chrome_trace(tracer, path)
        doc = json.loads(path.read_text())
        phs = {ev["ph"] for ev in doc["traceEvents"]}
        assert "B" in phs and "E" in phs
