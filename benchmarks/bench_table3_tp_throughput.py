"""Table 3: tensor-parallelism throughput from 4 to 64 GPUs (System IV).

Reproduces the paper's scaling study on the P100 cluster with the paper's
own model/batch configurations.  Expected shape: the speedup of advanced
tensor parallelism over 1D grows with the GPU count (the paper reaches
+275.5% for 2D at 64 GPUs; its headline 2.76x).

Model depth is scaled 24/32 -> 8 layers to keep the simulation quick;
since every layer has identical compute/communication structure, the
throughput *ratios* are unaffected.
"""

import pytest

from repro.cluster import system_iv

from vit_harness import vit_step_time

LAYERS = 8

# (gpus, mode, depth, hidden, heads, global batch) — straight from Table 3
TABLE3 = [
    (4, "1d", 1, 2048, 32, 128),
    (4, "2d", 1, 2048, 32, 256),
    (4, "2.5d", 1, 2048, 32, 256),
    (8, "1d", 1, 2048, 32, 256),
    (8, "2.5d", 2, 2048, 32, 384),
    (8, "3d", 1, 2048, 32, 512),
    (16, "1d", 1, 4096, 64, 64),
    (16, "2d", 1, 4096, 64, 256),
    (16, "2.5d", 4, 4096, 64, 256),
    (32, "1d", 1, 4096, 64, 128),
    (32, "2.5d", 2, 4096, 64, 256),
    (64, "1d", 1, 4096, 64, 128),
    (64, "2d", 1, 4096, 64, 512),
    (64, "2.5d", 4, 4096, 64, 512),
    (64, "3d", 1, 4096, 64, 512),
]

PAPER_SPEEDUP = {
    (4, "2d"): 22.1, (4, "2.5d"): 33.0,
    (8, "2.5d"): -11.9, (8, "3d"): 12.3,
    (16, "2d"): 55.8, (16, "2.5d"): 59.6,
    (32, "2.5d"): 50.6,
    (64, "2d"): 275.5, (64, "2.5d"): 6.5, (64, "3d"): 86.4,
}


class TestTable3:
    def test_throughput_scaling(self, benchmark, record_rows):
        def run():
            out = {}
            cluster = system_iv()
            for gpus, mode, depth, hidden, heads, batch in TABLE3:
                # 2.5D batch 384 on 8 GPUs: local batch must divide d*q=4
                t = vit_step_time(
                    cluster, gpus, mode, batch, LAYERS, hidden, heads, depth
                )
                out[(gpus, mode)] = (batch, batch / t if t else 0.0)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        gains = {}
        for gpus, mode, depth, hidden, heads, batch in TABLE3:
            b, thr = res[(gpus, mode)]
            base = res[(gpus, "1d")][1]
            speedup = 100 * (thr / base - 1) if mode != "1d" else 0.0
            gains[(gpus, mode)] = speedup
            paper = PAPER_SPEEDUP.get((gpus, mode))
            rows.append(
                [
                    gpus, mode, f"{hidden}", b, thr,
                    f"{speedup:+.1f}%" if mode != "1d" else "-",
                    f"{paper:+.1f}%" if paper is not None else "-",
                ]
            )
        record_rows(
            "Table 3: TP throughput on System IV (P100 cluster)",
            ["gpus", "mode", "hidden", "batch", "img/sec", "speedup vs 1D", "paper"],
            rows,
            notes="shape check: advanced-TP speedup over 1D grows with GPU count\n"
            "(paper's best: 2D +275.5% at 64 GPUs = the 2.76x headline)",
        )
        # qualitative assertions from the paper
        assert gains[(64, "2d")] > gains[(16, "2d")] > 0
        assert gains[(16, "2.5d")] > 0
        assert gains[(64, "3d")] > 0
        # the headline: speedup of advanced TP grows with scale, exceeding
        # 2x by 64 GPUs (paper's best single point: 2.76x)
        best64 = max(v for (g, m), v in gains.items() if g == 64)
        assert best64 > 100
        assert best64 > max(v for (g, m), v in gains.items() if g == 8)
