"""Headless perf-trajectory runner: re-measures the figure-benchmark
scenarios that the collective-algorithm layer targets and writes
``BENCH_<N>.json`` at the repo root, so per-PR performance is tracked in a
machine-readable file instead of pytest-benchmark console tables.

Every scenario records the flat-ring baseline and the auto-selected
result side by side: simulated seconds, the algorithm auto chose, and the
total wire bytes.  Run from the repo root::

    PYTHONPATH=src:benchmarks python benchmarks/run_bench.py [--out BENCH_3.json]
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List

from repro.cluster import system_i, system_ii, system_iii, uniform_cluster
from repro.comm import CostModel
from repro.utils.units import GB, KB, MB

from vit_harness import best_throughput

#: (label, cluster factory) for the collective sweeps
SYSTEMS = [
    ("system_i", system_i),
    ("system_ii", system_ii),
    ("system_iii", system_iii),
]

#: allreduce payloads covering the tree -> hierarchical crossover
SWEEP_BYTES = [64 * KB, MB, 8 * MB, 64 * MB, 125 * MB]


def collective_scenarios() -> List[Dict[str, Any]]:
    out = []
    for sys_name, mk in SYSTEMS:
        cluster = mk()
        model = CostModel(cluster)
        ranks = list(range(min(8, cluster.world_size)))
        for op in ("allreduce", "allgather", "reduce_scatter", "broadcast"):
            price = getattr(model, op)
            for nbytes in SWEEP_BYTES:
                ring = price(ranks, nbytes, algorithm="ring")
                auto = price(ranks, nbytes, algorithm="auto")
                out.append(
                    {
                        "scenario": f"{sys_name}/{op}/{len(ranks)}gpu/{nbytes}B",
                        "op": op,
                        "system": sys_name,
                        "gpus": len(ranks),
                        "nbytes": nbytes,
                        "ring_seconds": ring.seconds,
                        "ring_wire_bytes": ring.wire_bytes,
                        "auto_seconds": auto.seconds,
                        "auto_wire_bytes": auto.wire_bytes,
                        "auto_algorithm": auto.algorithm,
                        "speedup": ring.seconds / auto.seconds,
                    }
                )
    return out


def vit_scenarios() -> List[Dict[str, Any]]:
    """End-to-end Fig 11 slice: 1D ViT on System II, ring vs auto."""
    out = []
    for world, hidden, heads in ((4, 3072, 48), (8, 4096, 64)):
        per_algo = {}
        for algo in ("ring", "auto"):
            batch, thr = best_throughput(
                system_ii(), world, "1d", n_layers=16, hidden=hidden,
                heads=heads, max_batch=256, comm_algorithm=algo,
            )
            per_algo[algo] = {"best_batch": batch, "img_per_sec": thr}
        out.append(
            {
                "scenario": f"system_ii/vit_1d/{world}gpu",
                "system": "system_ii",
                "gpus": world,
                "ring": per_algo["ring"],
                "auto": per_algo["auto"],
                "speedup": per_algo["auto"]["img_per_sec"]
                / per_algo["ring"]["img_per_sec"],
            }
        )
    return out


def headline(collectives: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The ISSUE acceptance numbers, pulled out for quick diffing."""
    big = next(
        c for c in collectives
        if c["system"] == "system_ii" and c["op"] == "allreduce"
        and c["nbytes"] == 64 * MB
    )
    uniform = uniform_cluster(4)
    sanity = CostModel(uniform).allreduce(range(4), MB)
    return {
        "system_ii_allreduce_64MiB_speedup": big["speedup"],
        "system_ii_allreduce_64MiB_algorithm": big["auto_algorithm"],
        "auto_worst_ratio_vs_ring": max(
            c["auto_seconds"] / c["ring_seconds"] for c in collectives
        ),
        "uniform_ring_seconds_unchanged": sanity.seconds,
        "system_ii_allreduce_busbw_ring_GBps": next(
            (2 * 7 / 8) * c["nbytes"] / c["ring_seconds"] / GB
            for c in collectives
            if c["system"] == "system_ii" and c["op"] == "allreduce"
            and c["nbytes"] == 125 * MB
        ),
        "system_ii_allreduce_busbw_auto_GBps": next(
            (2 * 7 / 8) * c["nbytes"] / c["auto_seconds"] / GB
            for c in collectives
            if c["system"] == "system_ii" and c["op"] == "allreduce"
            and c["nbytes"] == 125 * MB
        ),
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_3.json")
    ap.add_argument(
        "--skip-vit", action="store_true",
        help="collective sweeps only (the ViT sweep takes ~1 min)",
    )
    args = ap.parse_args()

    collectives = collective_scenarios()
    report: Dict[str, Any] = {
        "pr": 3,
        "description": "topology-aware hierarchical collectives with "
        "cost-driven algorithm selection (flat-ring baseline vs auto)",
        "headline": headline(collectives),
        "collectives": collectives,
    }
    if not args.skip_vit:
        report["vit_system_ii_1d"] = vit_scenarios()

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    h = report["headline"]
    print(f"wrote {args.out}: {len(collectives)} collective scenarios")
    print(
        f"  System II 64 MiB allreduce: "
        f"{h['system_ii_allreduce_64MiB_speedup']:.2f}x via "
        f"{h['system_ii_allreduce_64MiB_algorithm']}"
    )
    print(f"  worst auto/ring ratio: {h['auto_worst_ratio_vs_ring']:.4f}")


if __name__ == "__main__":
    main()
