"""Headless perf-trajectory runner: re-measures the figure-benchmark
scenarios the perf-sensitive layers target and writes ``BENCH_<N>.json``
at the repo root, so per-PR performance is tracked in a machine-readable
file instead of pytest-benchmark console tables.

Collective scenarios record the flat-ring baseline and the auto-selected
result side by side (simulated seconds, chosen algorithm, wire bytes);
the sanitizer section runs the Fig-13b step with the sanitizer off /
spec-checking / checksumming and records the throughput delta — the
simulated metrics must be bitwise identical (verification piggybacks on
existing rounds), so only wall-clock changes.  The ``wallclock_threaded``
section measures what the *threaded* simulator costs in host seconds and
diffs it against the frozen pre-fast-path baseline
(``wallclock_baseline.json``).  Run from the repo root::

    PYTHONPATH=src:benchmarks python benchmarks/run_bench.py [--out BENCH_10.json]

``--jobs N`` farms the independent report sections to worker processes
(the sections share nothing; every scenario builds its own runtime) and
merges the results in the fixed section order, so the report is
byte-identical to a serial run.  Wall-clock readings taken under ``--jobs
> 1`` are contended and therefore noisier — the official numbers are
measured with the default ``--jobs 1``; all wall fields are advisory
either way (see ``check_regression.extract_wallclocks``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Dict, List

from repro.cluster import (
    system_i,
    system_ii,
    system_iii,
    system_iv,
    uniform_cluster,
)
from repro.comm import CostModel, SpecArray
from repro.config import Config
from repro.context import ParallelContext
from repro.runtime import SpmdRuntime
from repro.sanitize import CommSanitizer
from repro.utils.units import GB, KB, MB

from vit_harness import N_PATCHES, best_throughput

#: (label, cluster factory) for the collective sweeps
SYSTEMS = [
    ("system_i", system_i),
    ("system_ii", system_ii),
    ("system_iii", system_iii),
]

#: allreduce payloads covering the tree -> hierarchical crossover
SWEEP_BYTES = [64 * KB, MB, 8 * MB, 64 * MB, 125 * MB]


def collective_scenarios() -> List[Dict[str, Any]]:
    out = []
    for sys_name, mk in SYSTEMS:
        cluster = mk()
        model = CostModel(cluster)
        ranks = list(range(min(8, cluster.world_size)))
        for op in ("allreduce", "allgather", "reduce_scatter", "broadcast"):
            price = getattr(model, op)
            for nbytes in SWEEP_BYTES:
                ring = price(ranks, nbytes, algorithm="ring")
                auto = price(ranks, nbytes, algorithm="auto")
                out.append(
                    {
                        "scenario": f"{sys_name}/{op}/{len(ranks)}gpu/{nbytes}B",
                        "op": op,
                        "system": sys_name,
                        "gpus": len(ranks),
                        "nbytes": nbytes,
                        "ring_seconds": ring.seconds,
                        "ring_wire_bytes": ring.wire_bytes,
                        "auto_seconds": auto.seconds,
                        "auto_wire_bytes": auto.wire_bytes,
                        "auto_algorithm": auto.algorithm,
                        "speedup": ring.seconds / auto.seconds,
                    }
                )
    return out


def vit_scenarios() -> List[Dict[str, Any]]:
    """End-to-end Fig 11 slice: 1D ViT on System II, ring vs auto."""
    out = []
    for world, hidden, heads in ((4, 3072, 48), (8, 4096, 64)):
        per_algo = {}
        for algo in ("ring", "auto"):
            batch, thr = best_throughput(
                system_ii(), world, "1d", n_layers=16, hidden=hidden,
                heads=heads, max_batch=256, comm_algorithm=algo,
            )
            per_algo[algo] = {"best_batch": batch, "img_per_sec": thr}
        out.append(
            {
                "scenario": f"system_ii/vit_1d/{world}gpu",
                "system": "system_ii",
                "gpus": world,
                "ring": per_algo["ring"],
                "auto": per_algo["auto"],
                "speedup": per_algo["auto"]["img_per_sec"]
                / per_algo["ring"]["img_per_sec"],
            }
        )
    return out


def sanitize_scenarios() -> Dict[str, Any]:
    """Fig-13b BERT step (SP, 4-way parallel x 2 pipeline stages on System
    III) with the sanitizer disabled / spec-checking / checksumming.

    The simulated metrics — step seconds, total wire bytes, collective
    call count — must be *identical* across the three: every check
    piggybacks on existing rendezvous rounds.  What the sanitizer costs is
    host wall-clock, reported as the runner-throughput delta.
    """
    from bench_fig13_sp_throughput import step_time
    from repro.cluster import system_iii as _siii

    STAGES, BATCH = 2, 32
    world = 4 * STAGES
    variants = {
        "off": None,
        "spec_check": lambda: CommSanitizer(),
        "checksum": lambda: CommSanitizer(checksum=True),
    }
    out: Dict[str, Any] = {}
    for name, mk in variants.items():
        rt = SpmdRuntime(
            _siii(n_nodes=world // 4), world,
            sanitize=None if mk is None else mk(),
        )
        t0 = time.perf_counter()
        sim_seconds = step_time("sp", BATCH, pp_stages=STAGES, runtime=rt)
        wall = time.perf_counter() - t0
        wire = sum(g.counters.bytes_total for g in rt._groups.values())
        calls = sum(g.counters.calls_total for g in rt._groups.values())
        out[name] = {
            "sim_step_seconds": sim_seconds,
            "sim_samples_per_sec": BATCH / sim_seconds,
            "wire_bytes": wire,
            "collective_calls": calls,
            "wall_seconds": round(wall, 4),
        }
    base = out["off"]
    for name in ("spec_check", "checksum"):
        v = out[name]
        v["sim_metrics_identical"] = (
            v["sim_step_seconds"] == base["sim_step_seconds"]
            and v["wire_bytes"] == base["wire_bytes"]
            and v["collective_calls"] == base["collective_calls"]
        )
        v["wall_overhead_ratio"] = round(
            v["wall_seconds"] / base["wall_seconds"], 3
        )
    return {
        "scenario": f"system_iii/bert_sp/fig13b/{world}gpu/"
                    f"pp{STAGES}/batch{BATCH}",
        "variants": out,
        "sanitized_vs_unsanitized_sim_throughput_delta": (
            out["checksum"]["sim_samples_per_sec"]
            - base["sim_samples_per_sec"]
        ),
    }


def overlap_scenarios() -> Dict[str, Any]:
    """Fig-13b-style comm/compute overlap: one DDP ViT training step on
    System II, overlap off vs on.

    The model, batch and wire bytes are identical in both runs (overlap is
    a scheduling change — the parity suite asserts bitwise-equal numerics);
    only the simulated step time moves, because gradient-bucket all-reduces
    issued from backward hooks hide behind the remaining backward compute.
    Per-rank ``exposed_comm`` / ``overlapped_comm`` come straight from the
    comm-stream clocks."""
    from repro.autograd import checkpoint
    from repro.nn import TransformerLayer
    from repro.nn.module import Module
    from repro.parallel.data import DistributedDataParallel
    from repro.tensor import Tensor

    WORLD, LAYERS, HIDDEN, HEADS, BATCH = 8, 16, 3072, 48, 64

    class Stack(Module):
        def __init__(self):
            super().__init__()
            for i in range(LAYERS):
                setattr(
                    self, f"layer{i}",
                    TransformerLayer(HIDDEN, HEADS, dtype="float16"),
                )
            self.layers = [getattr(self, f"layer{i}") for i in range(LAYERS)]

        def forward(self, x):
            for l in self.layers:
                x = checkpoint(l, x)
            return x

    def run(overlap: bool) -> Dict[str, Any]:
        cluster = system_ii()
        cluster.reset()
        rt = SpmdRuntime(cluster, WORLD, comm_overlap=overlap)

        def prog(ctx):
            pc = ParallelContext(ctx, Config.from_dict({}))
            ddp = DistributedDataParallel(Stack(), pc, overlap=overlap)
            x = Tensor(
                SpecArray((BATCH // WORLD, N_PATCHES, HIDDEN), "float16"),
                requires_grad=True,
            )
            t0 = ctx.clock.time
            ddp(x).sum().backward()
            ddp.sync()
            return ctx.clock.time - t0

        step = max(rt.run(prog, materialize=False))
        counters = rt.group(tuple(range(WORLD))).counters
        return {
            "sim_step_seconds": step,
            "sim_img_per_sec": BATCH / step,
            "wire_bytes": counters.bytes_total,
            "collective_calls": counters.calls_total,
            "exposed_comm_seconds_total": counters.exposed_seconds_total,
            "overlapped_comm_seconds_total": counters.overlapped_seconds_total,
            "per_rank": [
                {
                    "rank": r,
                    "stream_seconds": s.busy_seconds(),
                    "exposed_comm": s.exposed_seconds,
                    "overlapped_comm": s.overlapped_seconds,
                }
                for r, s in enumerate(rt.comm_streams)
            ],
        }

    off = run(False)
    on = run(True)
    return {
        "scenario": f"system_ii/vit_ddp_overlap/{WORLD}gpu/batch{BATCH}",
        "overlap_off": off,
        "overlap_on": on,
        "wire_bytes_identical": off["wire_bytes"] == on["wire_bytes"],
        "step_time_reduction": 1.0
        - on["sim_step_seconds"] / off["sim_step_seconds"],
        "speedup": off["sim_step_seconds"] / on["sim_step_seconds"],
    }


def projection_scenarios() -> List[Dict[str, Any]]:
    """Projection execution mode (``repro.project``): capture a GPT-style
    DDP training step once at 8 threaded ranks, then replay the op stream
    analytically at 64 / 256 / 1024 ranks on a System-III-like fabric.

    The simulated metrics (projected step time, comm volume, hidden-comm
    fraction) are deterministic and gated; ``wall_seconds`` and
    ``wall_clock_per_simulated_second`` record what the projection *costs*
    to compute — the ISSUE-6 acceptance bound is 1024 ranks in under 60 s
    wall-clock — and are machine-dependent, so never gated."""
    from repro.autograd import checkpoint
    from repro.nn import TransformerLayer
    from repro.nn.module import Module
    from repro.parallel.data import DistributedDataParallel
    from repro.project import Fabric, capture_run, project
    from repro.tensor import Tensor

    WORLD, LAYERS, HIDDEN, HEADS = 8, 4, 1024, 16
    BATCH_PER_RANK, SEQ = 4, 256

    class GPT(Module):
        def __init__(self):
            super().__init__()
            for i in range(LAYERS):
                setattr(
                    self, f"layer{i}",
                    TransformerLayer(HIDDEN, HEADS, dtype="float16"),
                )
            self.layers = [getattr(self, f"layer{i}") for i in range(LAYERS)]

        def forward(self, x):
            for l in self.layers:
                x = checkpoint(l, x)
            return x

    def prog(ctx):
        pc = ParallelContext(ctx, Config.from_dict({}))
        ddp = DistributedDataParallel(GPT(), pc, overlap=True)
        x = Tensor(
            SpecArray((BATCH_PER_RANK, SEQ, HIDDEN), "float16"),
            requires_grad=True,
        )
        ddp(x).sum().backward()
        ddp.sync()

    t0 = time.perf_counter()
    _res, trace = capture_run(
        uniform_cluster(WORLD), prog, world_size=WORLD, comm_overlap=True
    )
    capture_wall = time.perf_counter() - t0
    fabric = Fabric.from_cluster(system_iii(n_nodes=2))
    out = []
    for target in (64, 256, 1024):
        t0 = time.perf_counter()
        rep = project(trace, factor=target // WORLD, fabric=fabric)
        wall = time.perf_counter() - t0
        tokens = target * BATCH_PER_RANK * SEQ
        out.append(
            {
                "scenario": f"gpt_ddp_project/{target}ranks",
                "captured_world": WORLD,
                "target_world": rep.target_world,
                "step_time": rep.step_time,
                "sim_tokens_per_sec": tokens / rep.step_time,
                "peak_memory_bytes": rep.peak_memory_bytes,
                "wire_bytes_total": rep.wire_bytes_total,
                "wire_elements_total": rep.wire_elements_total,
                "comm_calls_total": rep.comm_calls_total,
                "exposed_comm_seconds": rep.exposed_comm_seconds,
                "overlapped_comm_seconds": rep.overlapped_comm_seconds,
                "hidden_comm_fraction": rep.hidden_comm_fraction,
                "capture_wall_seconds": round(capture_wall, 4),
                "wall_seconds": round(wall, 4),
                "wall_clock_per_simulated_second": round(
                    wall / rep.step_time, 2
                ),
            }
        )
    return out


def hybrid_projection_scenarios() -> List[Dict[str, Any]]:
    """Hybrid-axis projection (ISSUE 7): capture a DP(4) x TP(2) x PP(2)
    GPT-style training step at 16 threaded ranks, then project it onto the
    paper's 512-GPU-class grids by widening all three axes at once —
    ``ScalePlan(axes={"dp": k1, "tp": k2, "pp": k3})``.

    Each scenario records the per-axis traffic breakdown and the projected
    peak memory under ZeRO-1-style optimizer-state sharding along the dp
    axis (``repro.analytic.memory_model.zero_partitioned_bytes``), plus
    ``wall_clock_per_simulated_second`` for the runner-cost trajectory.
    Simulated metrics are deterministic and gated; wall-clock never is."""
    from repro.analytic.memory_model import zero_partitioned_bytes
    from repro.context import ParallelMode
    from repro.nn import CrossEntropyLoss, Linear, Module, ModuleList
    from repro.parallel.data import sync_gradients
    from repro.parallel.pipeline import GPipeSchedule, partition_uniform
    from repro.parallel.tensor1d import ParallelTransformerLayer1D
    from repro.project import Fabric, capture_run, hybrid_plan, project
    from repro.project.axes import derive_axis_groups

    import numpy as np

    WORLD, TPD, PPD = 16, 2, 2            # dp degree 4
    LAYERS, HIDDEN, HEADS, CLASSES = 4, 128, 8, 16
    BATCH, SEQ, MICROBATCHES = 8, 4, 2
    cfg = Config.from_dict(
        dict(
            parallel=dict(tensor=dict(size=TPD, mode="1d"), pipeline=PPD),
            num_microbatches=MICROBATCHES,
        )
    )
    rng = np.random.default_rng(0)
    X = rng.standard_normal((BATCH, SEQ, HIDDEN)).astype(np.float32)
    Y = rng.integers(0, CLASSES, (BATCH, SEQ))
    crit = CrossEntropyLoss()

    class Stage(Module):
        def __init__(self, idxs, tp_comm, with_head):
            super().__init__()
            self.layers = ModuleList([
                ParallelTransformerLayer1D(
                    HIDDEN, HEADS, tp_comm, 2, causal=True,
                    rng=np.random.default_rng((5, i)),
                )
                for i in idxs
            ])
            self.head = (
                Linear(HIDDEN, CLASSES, rng=np.random.default_rng(9))
                if with_head else None
            )

        def forward(self, x):
            for layer in self.layers:
                x = layer(x)
            return self.head(x) if self.head is not None else x

    def prog(ctx):
        pc = ParallelContext(ctx, cfg)
        s, e = partition_uniform(LAYERS, pc.pipeline_size)[pc.pp_rank]
        stage = Stage(
            range(s, e), pc.comm(ParallelMode.TENSOR),
            with_head=pc.is_last_pipeline_stage(),
        )
        sched = GPipeSchedule(pc, MICROBATCHES)
        sched.run(
            stage,
            X if pc.is_first_pipeline_stage() else None,
            Y if pc.is_last_pipeline_stage() else None,
            crit,
        )
        sync_gradients(stage.parameters(), pc.comm(ParallelMode.DATA))
        return sum(int(p.payload.size) for p in stage.parameters())

    t0 = time.perf_counter()
    params_per_rank, trace = capture_run(
        uniform_cluster(WORLD), prog, world_size=WORLD, materialize=True
    )
    capture_wall = time.perf_counter() - t0
    trace.axes = derive_axis_groups(WORLD, tensor=TPD, pipeline=PPD)
    fabric = Fabric.from_cluster(system_iii(n_nodes=2))
    # modeled: the dp axis shards ZeRO-1 optimizer state (fp32 master+m+v)
    # of this rank's parameters when it widens
    zero1 = zero_partitioned_bytes(max(params_per_rank), stage=1)
    out = []
    for factors in (
        {"dp": 4},                       # 64 ranks, pure DP scale-out
        {"dp": 8, "tp": 2, "pp": 2},     # 512 ranks, paper-grid hybrid
        {"dp": 16, "tp": 2, "pp": 2},    # 1024 ranks
    ):
        plan = hybrid_plan(
            dict(factors), world=WORLD, tensor=TPD, pipeline=PPD,
            sharded_bytes={"dp": zero1},
        )
        t0 = time.perf_counter()
        rep = project(trace, plan=plan, fabric=fabric)
        wall = time.perf_counter() - t0
        name = "x".join(f"{k}{v}" for k, v in sorted(factors.items()))
        out.append(
            {
                "scenario": f"gpt_hybrid_project/{name}/{rep.target_world}ranks",
                "captured_world": WORLD,
                "captured_layout": {"dp": 4, "tp": TPD, "pp": PPD},
                "axis_factors": dict(factors),
                "target_world": rep.target_world,
                "step_time": rep.step_time,
                "peak_memory_bytes": rep.peak_memory_bytes,
                "zero1_dp_sharded_bytes": zero1,
                "wire_bytes_total": rep.wire_bytes_total,
                "wire_elements_total": rep.wire_elements_total,
                "comm_calls_total": rep.comm_calls_total,
                "hidden_comm_fraction": rep.hidden_comm_fraction,
                "axes": [a.to_dict() for a in rep.axes],
                "capture_wall_seconds": round(capture_wall, 4),
                "wall_seconds": round(wall, 4),
                "wall_clock_per_simulated_second": round(
                    wall / rep.step_time, 2
                ),
            }
        )
    return out


def wallclock_scenarios() -> Dict[str, Any]:
    """Threaded-runtime wall-clock (ISSUE 8): measure the DDP ViT, ZeRO
    and SP-pipeline scenarios live and put each next to the frozen
    pre-fast-path baseline.

    The contract of the fast path is enforced right here in the report:
    ``sim_metrics_identical`` diffs the live simulated step time, wire
    bytes and collective-call count against the baseline values bit for
    bit — event-driven rendezvous, pooled buffers and the spec-mode
    shortcuts may only move ``wall_seconds``."""
    import wallclock

    base_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "wallclock_baseline.json"
    )
    with open(base_path) as f:
        baseline = json.load(f)
    after = wallclock.measure_all()
    fields = (
        "sim_step_seconds", "wire_bytes", "collective_calls",
        "wall_seconds", "wall_clock_per_simulated_second",
    )
    sim_fields = ("sim_step_seconds", "wire_bytes", "collective_calls")
    out: Dict[str, Any] = {
        "baseline_commit": baseline["_meta"]["commit"],
        "scenarios": {},
    }
    for name in wallclock.SCENARIOS:
        b = baseline["scenarios"][name]
        a = after[name]
        out["scenarios"][name] = {
            "scenario": a["scenario"],
            "before": {k: b[k] for k in fields},
            "after": {k: a[k] for k in fields},
            "sim_metrics_identical": all(a[k] == b[k] for k in sim_fields),
            "wall_speedup": round(b["wall_seconds"] / a["wall_seconds"], 2),
        }
    return out


#: (system label, cluster factory, world, global batch) for the strategy
#: compiler end-to-end runs.  System IV exercises the model-mode path: the
#: probe runs at <= 16 ranks and the projector prices the DP widening.
AUTOPAR_SYSTEMS = [
    ("system_i", system_i, 8, 256),
    ("system_ii", system_ii, 8, 256),
    ("system_iv", system_iv, 64, 512),
]


def autopar_scenarios() -> Dict[str, Any]:
    """End-to-end strategy compiles plus the pinned Fig-11 mode-switch
    scenario.

    ``compiles`` records, per system, the plan the compiler chose with its
    analytic and refined step times (simulated seconds — deterministic and
    gated) and the host wall-clock of the compile itself (advisory).

    ``fig11_mode_switch`` is the hardware-dependent TP mode flip of Fig 11
    pinned as data: the *same* tensor-parallel degree (t=4, dp=2) priced as
    1D vs 2D on System I (uniform intra-node links: 1D wins) and System II
    (NVLink pairs + PCIe cross-pairs: 2D wins).  ``chosen_mode`` must equal
    the argmin of ``mode_times`` — check_regression gates that the System
    II scenario never regresses to the slower mode."""
    from repro.autopar import (
        StrategyCandidate,
        Workload,
        compile_strategy,
        refine_candidate,
        score_candidate,
    )

    work = Workload(n_layers=16, hidden=3072, n_heads=48, seq_len=196)
    out: Dict[str, Any] = {"compiles": [], "fig11_mode_switch": {}}
    for sys_name, mk, world, batch in AUTOPAR_SYSTEMS:
        cluster = mk()
        t0 = time.perf_counter()
        compiled = compile_strategy(
            cluster, work, batch, world_size=world, max_probe_world=16)
        wall = time.perf_counter() - t0
        refined = compiled.refined
        out["compiles"].append({
            "scenario": f"autopar/{sys_name}/w{world}",
            "system": sys_name,
            "world": world,
            "global_batch": batch,
            "plan": compiled.candidate.describe(),
            "analytic_step_seconds": compiled.score.step_seconds,
            "refined_step_seconds":
                refined.step_seconds if refined else None,
            "refined_mode": refined.mode if refined else None,
            "probe_world": refined.probe_world if refined else None,
            "candidates_scored": len(compiled.report.scored),
            "candidates_rejected":
                sum(compiled.report.rejection_counts().values()),
            # host seconds for the whole search (enumerate + score +
            # shortlist probes); advisory like every wall field
            "compile_wall_seconds": round(wall, 4),
        })
    for sys_name, mk in (("system_i", system_i), ("system_ii", system_ii)):
        cluster = mk()
        mode_times: Dict[str, float] = {}
        for mode in ("1d", "2d"):
            cand = StrategyCandidate(
                data=2, tensor=4, mode=mode, pipeline=1, algorithm="auto")
            score = score_candidate(cluster, work, cand, 256)
            refined = refine_candidate(cluster, work, cand, 256, score)
            mode_times[mode] = refined.step_seconds
        out["fig11_mode_switch"][sys_name] = {
            "scenario": f"autopar/fig11_{sys_name}_t4",
            "world": 8,
            "tensor": 4,
            "mode_times": mode_times,
            "chosen_mode": min(mode_times, key=mode_times.get),
        }
    return out


def serving_scenarios() -> Dict[str, Any]:
    """Serving under traffic (ISSUE 10): latency vs offered load and
    goodput under rank loss, on a 2-rank TP replica of a GPT-style
    decoder over the uniform cluster.

    The closed-loop *capacity probe* saturates the replica first (16
    clients, zero think time) and its completed-requests/s becomes the
    unit the open-loop rates are expressed in — so the sweep brackets the
    knee by construction: 0.4x capacity is underload, 0.8x approaches
    the knee, 1.6x is past it and queues grow without bound.  Goodput
    (simulated tokens/s) is deterministic and hard-gated per scenario;
    the latency percentiles feed ``check_regression.check_serving``'s
    intra-report invariants (goodput must saturate while offered load
    doubles, p99 TTFT must rise past the knee).

    The *MTBF sweep* reruns the near-knee workload with rank 1 crashing
    at fractions of the fault-free makespan.  Each faulted entry embeds
    the fault-free baseline goodput/p99 so the gate can price the SLO
    hit inside one report: recovery downtime plus KV-cache replay must
    cost measurable goodput and TTFT."""
    from repro.faults import FaultPlan
    from repro.serve import (
        ClosedLoopTraffic,
        ModelSpec,
        OpenLoopTraffic,
        serve_traffic,
    )

    WORLD = 2
    model = ModelSpec(n_layers=4, hidden=1024, n_heads=16)
    LENGTHS = dict(prompt_tokens=(16, 64), max_new_tokens=(8, 32))
    KNOBS = dict(world_size=WORLD, max_batch_tokens=256, kv_blocks=256,
                 block_size=16)

    def entry(scen: str, rep: Any, offered: Any = None,
              **extra: Any) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "scenario": scen,
            "offered_req_per_sec": offered,
            "goodput_tokens_per_sec": rep.goodput_tokens_per_sec,
            "completed_req_per_sec": rep.completed_per_sec,
            "issued": rep.n_issued,
            "completed": rep.n_completed,
            "failed": rep.n_failed,
            "preemptions": rep.preemptions,
            "restarts": rep.restarts,
            "failures": len(rep.failures),
            "p50_ttft": rep.p50_ttft,
            "p99_ttft": rep.p99_ttft,
            "mean_token_latency": rep.mean_token_latency,
            "p99_token_latency": rep.p99_token_latency,
            "p50_e2e": rep.p50_e2e,
            "p99_e2e": rep.p99_e2e,
            "makespan": rep.makespan,
        }
        out.update(extra)
        return out

    # 64 zero-think clients keep the decode batch deep enough that the
    # weight read is fully amortized — completed-req/s at this depth is
    # the service capacity the open-loop rates are multiples of
    probe_rep = serve_traffic(
        model, ClosedLoopTraffic(clients=64, n_requests=256, seed=7,
                                 **LENGTHS),
        **KNOBS)
    capacity_rps = probe_rep.completed_per_sec

    load_sweep = []
    for mult in (0.4, 0.8, 1.6):
        rate = capacity_rps * mult
        rep = serve_traffic(
            model, OpenLoopTraffic(rate=rate, n_requests=128, seed=11,
                                   **LENGTHS),
            **KNOBS)
        load_sweep.append(entry(
            f"serving/open_load_{mult:g}x", rep, offered=rate,
            capacity_multiple=mult))

    # MTBF sweep just past the knee (1.2x capacity): the run is
    # service-bound there, so recovery downtime and KV replay extend the
    # makespan directly instead of hiding in arrival-side idle headroom
    mtbf_traffic = dict(rate=capacity_rps * 1.2, n_requests=96, seed=13)
    base_rep = serve_traffic(
        model, OpenLoopTraffic(**mtbf_traffic, **LENGTHS), **KNOBS)
    recovery = base_rep.makespan * 0.15  # simulated seconds, deterministic
    mtbf_sweep = [entry("serving/mtbf_baseline", base_rep,
                        offered=mtbf_traffic["rate"])]
    for frac in (0.3, 0.6):
        plan = FaultPlan(seed=17).crash(
            1, at_time=base_rep.makespan * frac)
        rep = serve_traffic(
            model, OpenLoopTraffic(**mtbf_traffic, **LENGTHS),
            fault_plan=plan, recovery_seconds=recovery, **KNOBS)
        mtbf_sweep.append(entry(
            f"serving/mtbf_crash_at_{frac:g}", rep,
            offered=mtbf_traffic["rate"],
            crash_fraction=frac,
            recovery_seconds=recovery,
            failure_events=[f.to_dict() for f in rep.failures],
            baseline_goodput_tokens_per_sec=base_rep.goodput_tokens_per_sec,
            baseline_p99_ttft=base_rep.p99_ttft,
            goodput_retained=rep.goodput_tokens_per_sec
            / base_rep.goodput_tokens_per_sec,
        ))

    return {
        "scenario": f"serving/uniform{WORLD}gpu/tp{WORLD}",
        "model": model.describe(),
        "world": WORLD,
        "engine": dict(KNOBS),
        "capacity_probe": entry(
            "serving/capacity_probe_closed16", probe_rep,
            clients=16),
        "load_sweep": load_sweep,
        "mtbf_sweep": mtbf_sweep,
    }


#: section key -> producer; execution order (report key order is fixed in
#: ``main`` regardless).  ``wallclock_threaded`` deliberately runs first:
#: its host-second readings are the one machine-sensitive output, so they
#: are taken in a cold process before the heavy sweeps heat the host.
#: ``--jobs`` farms these to worker processes and merges by key, so the
#: report bytes do not depend on completion order.
SECTIONS = [
    ("wallclock_threaded", wallclock_scenarios),
    ("collectives", collective_scenarios),
    ("sanitizer_fig13b", sanitize_scenarios),
    ("overlap_fig13b", overlap_scenarios),
    ("projection", projection_scenarios),
    ("hybrid_projection", hybrid_projection_scenarios),
    ("autopar_strategy", autopar_scenarios),
    ("serving", serving_scenarios),
    ("vit_system_ii_1d", vit_scenarios),
]


def _run_section(key: str) -> Any:
    # top-level (picklable) worker entry point for --jobs
    return dict(SECTIONS)[key]()


def produce_sections(keys: List[str], jobs: int) -> Dict[str, Any]:
    if jobs <= 1:
        return {k: _run_section(k) for k in keys}
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as ex:
        results = dict(zip(keys, ex.map(_run_section, keys)))
    return {k: results[k] for k in keys}


def headline(collectives: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The ISSUE acceptance numbers, pulled out for quick diffing."""
    big = next(
        c for c in collectives
        if c["system"] == "system_ii" and c["op"] == "allreduce"
        and c["nbytes"] == 64 * MB
    )
    uniform = uniform_cluster(4)
    sanity = CostModel(uniform).allreduce(range(4), MB)
    return {
        "system_ii_allreduce_64MiB_speedup": big["speedup"],
        "system_ii_allreduce_64MiB_algorithm": big["auto_algorithm"],
        "auto_worst_ratio_vs_ring": max(
            c["auto_seconds"] / c["ring_seconds"] for c in collectives
        ),
        "uniform_ring_seconds_unchanged": sanity.seconds,
        "system_ii_allreduce_busbw_ring_GBps": next(
            (2 * 7 / 8) * c["nbytes"] / c["ring_seconds"] / GB
            for c in collectives
            if c["system"] == "system_ii" and c["op"] == "allreduce"
            and c["nbytes"] == 125 * MB
        ),
        "system_ii_allreduce_busbw_auto_GBps": next(
            (2 * 7 / 8) * c["nbytes"] / c["auto_seconds"] / GB
            for c in collectives
            if c["system"] == "system_ii" and c["op"] == "allreduce"
            and c["nbytes"] == 125 * MB
        ),
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_10.json")
    ap.add_argument(
        "--skip-vit", action="store_true",
        help="collective sweeps only (the ViT sweep takes ~1 min)",
    )
    ap.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="farm the independent report sections to N worker processes "
        "(merged deterministically; wall-clock readings are noisier when "
        "contended — use 1 for official numbers)",
    )
    args = ap.parse_args()

    keys = [k for k, _ in SECTIONS
            if not (args.skip_vit and k == "vit_system_ii_1d")]
    sections = produce_sections(keys, args.jobs)
    collectives = sections["collectives"]
    sanitize = sections["sanitizer_fig13b"]
    overlap = sections["overlap_fig13b"]
    projection = sections["projection"]
    hybrid = sections["hybrid_projection"]
    wallclock_threaded = sections["wallclock_threaded"]
    autopar = sections["autopar_strategy"]
    serving = sections["serving"]
    report: Dict[str, Any] = {
        "pr": 10,
        "description": "Serving engine under traffic: continuous batching "
        "+ paged KV cache on a 2-rank TP replica — closed-loop capacity "
        "probe, open-loop latency-vs-load sweep bracketing the knee, and "
        "an MTBF sweep pricing rank loss against the fault-free baseline "
        "(serving section), on top of the PR-9 strategy compiler, PR-8 "
        "wall-clock fast path, PR-7 hybrid projection, PR-6 projection, "
        "PR-5 overlap, PR-4 sanitizer and PR-3 algorithm-selection "
        "scenarios",
        "headline": headline(collectives),
        "collectives": collectives,
        "sanitizer_fig13b": sanitize,
        "overlap_fig13b": overlap,
        "projection": projection,
        "hybrid_projection": hybrid,
        "wallclock_threaded": wallclock_threaded,
        "autopar_strategy": autopar,
        "serving": serving,
    }
    if not args.skip_vit:
        report["vit_system_ii_1d"] = sections["vit_system_ii_1d"]

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    h = report["headline"]
    print(f"wrote {args.out}: {len(collectives)} collective scenarios")
    print(
        f"  System II 64 MiB allreduce: "
        f"{h['system_ii_allreduce_64MiB_speedup']:.2f}x via "
        f"{h['system_ii_allreduce_64MiB_algorithm']}"
    )
    print(f"  worst auto/ring ratio: {h['auto_worst_ratio_vs_ring']:.4f}")
    v = sanitize["variants"]
    print(
        f"  Fig-13b sanitizer: sim metrics identical="
        f"{v['checksum']['sim_metrics_identical']}, wall overhead "
        f"spec-check {v['spec_check']['wall_overhead_ratio']}x / "
        f"checksum {v['checksum']['wall_overhead_ratio']}x"
    )
    print(
        f"  DDP ViT overlap: step time -{overlap['step_time_reduction']:.1%} "
        f"({overlap['speedup']:.2f}x) at identical wire bytes="
        f"{overlap['wire_bytes_identical']}"
    )
    for p in projection:
        print(
            f"  GPT projection -> {p['target_world']} ranks: step "
            f"{p['step_time']:.4f}s sim, hidden comm "
            f"{p['hidden_comm_fraction']:.1%}, computed in "
            f"{p['wall_seconds']:.2f}s wall"
        )
    for p in hybrid:
        factors = "x".join(
            f"{k}{v}" for k, v in sorted(p["axis_factors"].items())
        )
        print(
            f"  hybrid projection {factors} -> {p['target_world']} ranks: "
            f"step {p['step_time']:.4f}s sim, peak "
            f"{p['peak_memory_bytes'] / MB:.1f} MiB, computed in "
            f"{p['wall_seconds']:.2f}s wall"
        )
    for name, w in wallclock_threaded["scenarios"].items():
        print(
            f"  threaded wall-clock {name}: {w['before']['wall_seconds']}s "
            f"-> {w['after']['wall_seconds']}s ({w['wall_speedup']:.2f}x), "
            f"sim metrics identical={w['sim_metrics_identical']}"
        )
    for c in autopar["compiles"]:
        print(
            f"  autopar {c['system']} w{c['world']}: {c['plan']} — "
            f"{c['refined_step_seconds']:.4f}s/step sim "
            f"({c['candidates_scored']} candidates, compiled in "
            f"{c['compile_wall_seconds']:.2f}s wall)"
        )
    for name, f11 in autopar["fig11_mode_switch"].items():
        times = ", ".join(
            f"{m}={t:.3f}s" for m, t in f11["mode_times"].items())
        print(f"  autopar Fig-11 {name} t=4: {times} -> "
              f"{f11['chosen_mode']}")
    probe = serving["capacity_probe"]
    print(
        f"  serving capacity probe: {probe['goodput_tokens_per_sec']:.0f} "
        f"tok/s ({probe['completed_req_per_sec']:.1f} req/s) closed-loop"
    )
    for s in serving["load_sweep"]:
        print(
            f"  serving {s['capacity_multiple']:g}x capacity: goodput "
            f"{s['goodput_tokens_per_sec']:.0f} tok/s, p99 ttft "
            f"{s['p99_ttft'] * 1e3:.2f}ms, {s['preemptions']} preemptions"
        )
    for s in serving["mtbf_sweep"]:
        if not s["failures"]:
            continue
        print(
            f"  serving rank loss at {s['crash_fraction']:g} of makespan: "
            f"goodput retained {s['goodput_retained']:.1%}, p99 ttft "
            f"{s['baseline_p99_ttft'] * 1e3:.2f}ms -> "
            f"{s['p99_ttft'] * 1e3:.2f}ms"
        )


if __name__ == "__main__":
    main()
