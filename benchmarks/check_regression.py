"""Perf-regression gate over the ``BENCH_<N>.json`` trajectory.

Each PR's :mod:`run_bench` writes a machine-readable report; this gate
diffs the newest one against every prior report and fails when a scenario
both files measure lost more than 10% *simulated* throughput.  Simulated
metrics are deterministic — same code, same numbers — so any drift is a
real change to the cost model, the collective algorithms or a scheduler,
never measurement noise; the threshold only leaves room for intentional
model refinements that are documented in the PR.

Run standalone (exit 1 on regression)::

    python benchmarks/check_regression.py [--root .] [--tolerance 0.10]

or as the pytest lane ``pytest -m bench_gate``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: default allowed fractional throughput drop per shared scenario
TOLERANCE = 0.10


def extract_throughputs(report: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a run_bench report into ``scenario-key -> simulated
    throughput`` (higher is better).  Seconds-valued metrics are inverted
    so every entry compares the same way.  Unknown sections are ignored —
    older reports simply share fewer keys with newer ones — and a
    malformed entry (missing keys, wrong types, zero seconds) drops that
    entry rather than crashing the gate: reports written by other PRs'
    runners must never be able to break *this* PR's gate."""
    out: Dict[str, float] = {}

    def put(key: str, fn) -> None:
        try:
            value = fn()
        except (KeyError, TypeError, ZeroDivisionError, IndexError):
            return
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)

    for c in report.get("collectives") or []:
        if not isinstance(c, dict) or "scenario" not in c:
            continue
        scen = c["scenario"]
        put(f"{scen}/ring", lambda c=c: 1.0 / c["ring_seconds"])
        put(f"{scen}/auto", lambda c=c: 1.0 / c["auto_seconds"])
    for v in report.get("vit_system_ii_1d") or []:
        if not isinstance(v, dict) or "scenario" not in v:
            continue
        scen = v["scenario"]
        for algo in ("ring", "auto"):
            if algo in v:
                put(f"{scen}/{algo}", lambda v=v, a=algo: v[a]["img_per_sec"])
    san = report.get("sanitizer_fig13b")
    if isinstance(san, dict) and "scenario" in san:
        for name, var in (san.get("variants") or {}).items():
            put(f"{san['scenario']}/{name}",
                lambda var=var: var["sim_samples_per_sec"])
    ovl = report.get("overlap_fig13b")
    if isinstance(ovl, dict) and "scenario" in ovl:
        for mode in ("overlap_off", "overlap_on"):
            if mode in ovl:
                put(f"{ovl['scenario']}/{mode}",
                    lambda ovl=ovl, m=mode: ovl[m]["sim_img_per_sec"])
    for p in report.get("projection") or []:
        if not isinstance(p, dict) or "scenario" not in p:
            continue
        # projected step time is the simulated metric; wall-clock cost of
        # producing it is machine-dependent and never gated
        put(f"{p['scenario']}/projected", lambda p=p: 1.0 / p["step_time"])
    for p in report.get("hybrid_projection") or []:
        if not isinstance(p, dict) or "scenario" not in p:
            continue
        put(f"{p['scenario']}/projected", lambda p=p: 1.0 / p["step_time"])
    return out


def compare(
    new: Dict[str, float], old: Dict[str, float], tolerance: float = TOLERANCE
) -> List[Tuple[str, float, float, float]]:
    """Regressions in ``new`` vs ``old`` over shared scenarios: a list of
    ``(scenario, old_throughput, new_throughput, drop_fraction)`` where the
    drop exceeds ``tolerance``."""
    regressions = []
    for key in sorted(set(new) & set(old)):
        o, n = old[key], new[key]
        if o <= 0:
            continue
        drop = 1.0 - n / o
        if drop > tolerance:
            regressions.append((key, o, n, drop))
    return regressions


def bench_files(root: Path) -> List[Path]:
    """``BENCH_<N>.json`` files at the repo root, ordered by N."""
    found = []
    for p in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m:
            found.append((int(m.group(1)), p))
    return [p for _, p in sorted(found)]


def check(
    root: Path,
    tolerance: float = TOLERANCE,
    warnings: Optional[List[str]] = None,
) -> List[str]:
    """Diff the newest report against every prior one; returns human-readable
    regression lines (empty = gate passes).

    Scenario sets are allowed to differ between reports: scenarios only the
    newest report measures are simply new coverage, and scenarios a prior
    report measured that the newest dropped are *warned about* without
    failing the gate — appended to ``warnings`` when a list is passed,
    printed to stderr otherwise, so programmatic callers never get silent
    scenario-set shrinkage — unless a prior report shares nothing at all,
    which means the runner stopped covering prior workloads entirely and
    is a hard problem."""
    files = bench_files(root)
    if len(files) < 2:
        return []
    newest = files[-1]
    new = extract_throughputs(json.loads(newest.read_text()))
    problems: List[str] = []
    for prior in files[:-1]:
        old = extract_throughputs(json.loads(prior.read_text()))
        shared = len(set(new) & set(old))
        if shared == 0:
            problems.append(
                f"{newest.name} vs {prior.name}: no shared scenarios — "
                f"the benchmark runner stopped covering prior workloads"
            )
            continue
        removed = sorted(set(old) - set(new))
        if removed:
            message = (
                f"{newest.name} vs {prior.name}: {len(removed)} "
                f"scenario(s) no longer measured: {', '.join(removed)}"
            )
            if warnings is not None:
                warnings.append(message)
            else:
                print(f"bench gate warning: {message}", file=sys.stderr)
        for key, o, n, drop in compare(new, old, tolerance):
            problems.append(
                f"{newest.name} vs {prior.name}: {key} dropped {drop:.1%} "
                f"({o:.4g} -> {n:.4g} sim throughput)"
            )
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="directory holding BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = ap.parse_args()
    root = Path(args.root)
    files = bench_files(root)
    if len(files) < 2:
        print(f"bench gate: {len(files)} report(s) under {root} — nothing to diff")
        return 0
    warnings: List[str] = []
    problems = check(root, args.tolerance, warnings=warnings)
    for line in warnings:
        print(f"bench gate warning: {line}")
    if problems:
        print(f"bench gate FAILED ({len(problems)} regression(s)):")
        for line in problems:
            print(f"  {line}")
        return 1
    names = ", ".join(p.name for p in files[:-1])
    print(
        f"bench gate OK: {files[-1].name} holds throughput within "
        f"{args.tolerance:.0%} of {names}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
