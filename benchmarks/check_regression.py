"""Perf-regression gate over the ``BENCH_<N>.json`` trajectory.

Each PR's :mod:`run_bench` writes a machine-readable report; this gate
diffs the newest one against every prior report and fails when a scenario
both files measure lost more than 10% *simulated* throughput.  Simulated
metrics are deterministic — same code, same numbers — so any drift is a
real change to the cost model, the collective algorithms or a scheduler,
never measurement noise; the threshold only leaves room for intentional
model refinements that are documented in the PR.

Host wall-clock (the ``wallclock_threaded`` section and the strategy
compiler's ``compile_wall_seconds``) is the one machine-dependent family
of metrics: :func:`check_wallclocks` diffs it too, but only ever emits
*warnings* — a slow CI box must never fail the gate, while a genuine
fast-path regression still leaves a visible trail.

The ``autopar_strategy`` section additionally carries an *intra-report*
invariant (:func:`check_mode_switch`): the pinned Fig-11 System II
scenario must choose the TP mode whose refined step time is the minimum
of ``mode_times`` — i.e. the compiler never regresses to picking the
slower-scoring mode on the hardware the paper's figure turns on.
Likewise the ``serving`` section (:func:`check_serving`): the load sweep
must saturate with p99 TTFT rising past the knee, and every rank-loss
scenario must price a measurable SLO hit vs its fault-free baseline.
Finally :func:`check_empty_sections` turns a present-but-empty section
into a clear failure instead of a silent nothing-to-extract pass.

Run standalone (exit 1 on regression)::

    python benchmarks/check_regression.py [--root .] [--tolerance 0.10]

or as the pytest lane ``pytest -m bench_gate``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: default allowed fractional throughput drop per shared scenario
TOLERANCE = 0.10


def extract_throughputs(report: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a run_bench report into ``scenario-key -> simulated
    throughput`` (higher is better).  Seconds-valued metrics are inverted
    so every entry compares the same way.  Unknown sections are ignored —
    older reports simply share fewer keys with newer ones — and a
    malformed entry (missing keys, wrong types, zero seconds) drops that
    entry rather than crashing the gate: reports written by other PRs'
    runners must never be able to break *this* PR's gate."""
    out: Dict[str, float] = {}

    def put(key: str, fn) -> None:
        try:
            value = fn()
        except (KeyError, TypeError, ZeroDivisionError, IndexError):
            return
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)

    for c in report.get("collectives") or []:
        if not isinstance(c, dict) or "scenario" not in c:
            continue
        scen = c["scenario"]
        put(f"{scen}/ring", lambda c=c: 1.0 / c["ring_seconds"])
        put(f"{scen}/auto", lambda c=c: 1.0 / c["auto_seconds"])
    for v in report.get("vit_system_ii_1d") or []:
        if not isinstance(v, dict) or "scenario" not in v:
            continue
        scen = v["scenario"]
        for algo in ("ring", "auto"):
            if algo in v:
                put(f"{scen}/{algo}", lambda v=v, a=algo: v[a]["img_per_sec"])
    san = report.get("sanitizer_fig13b")
    if isinstance(san, dict) and "scenario" in san:
        for name, var in (san.get("variants") or {}).items():
            put(f"{san['scenario']}/{name}",
                lambda var=var: var["sim_samples_per_sec"])
    ovl = report.get("overlap_fig13b")
    if isinstance(ovl, dict) and "scenario" in ovl:
        for mode in ("overlap_off", "overlap_on"):
            if mode in ovl:
                put(f"{ovl['scenario']}/{mode}",
                    lambda ovl=ovl, m=mode: ovl[m]["sim_img_per_sec"])
    for p in report.get("projection") or []:
        if not isinstance(p, dict) or "scenario" not in p:
            continue
        # projected step time is the simulated metric; wall-clock cost of
        # producing it is machine-dependent and never gated
        put(f"{p['scenario']}/projected", lambda p=p: 1.0 / p["step_time"])
    for p in report.get("hybrid_projection") or []:
        if not isinstance(p, dict) or "scenario" not in p:
            continue
        put(f"{p['scenario']}/projected", lambda p=p: 1.0 / p["step_time"])
    wc = report.get("wallclock_threaded")
    if isinstance(wc, dict):
        # the *simulated* step time of each threaded wall-clock scenario is
        # deterministic and gated like any other; the wall fields live in
        # extract_wallclocks and are only ever advisory
        for name, s in (wc.get("scenarios") or {}).items():
            if not isinstance(s, dict) or "scenario" not in s:
                continue
            put(f"{s['scenario']}/sim",
                lambda s=s: 1.0 / s["after"]["sim_step_seconds"])
    ap = report.get("autopar_strategy")
    if isinstance(ap, dict):
        # the compiled plan's refined step time is simulated seconds and
        # gated; compile_wall_seconds is host time (extract_wallclocks)
        for c in ap.get("compiles") or []:
            if not isinstance(c, dict) or "scenario" not in c:
                continue
            put(f"{c['scenario']}/refined",
                lambda c=c: 1.0 / c["refined_step_seconds"])
        for name, f11 in (ap.get("fig11_mode_switch") or {}).items():
            if not isinstance(f11, dict) or "scenario" not in f11:
                continue
            for mode, seconds in (f11.get("mode_times") or {}).items():
                put(f"{f11['scenario']}/{mode}",
                    lambda seconds=seconds: 1.0 / seconds)
    sv = report.get("serving")
    if isinstance(sv, dict):
        # serving goodput (simulated tokens/s) is the hard-gated metric;
        # latency percentiles feed check_serving's intra-report invariants
        for entry in list(sv.get("load_sweep") or []) + list(
                sv.get("mtbf_sweep") or []):
            if not isinstance(entry, dict) or "scenario" not in entry:
                continue
            put(f"{entry['scenario']}/goodput",
                lambda e=entry: e["goodput_tokens_per_sec"])
    return out


#: advisory wall-clock growth that triggers a warning (never a failure):
#: generous because host wall-clock is machine- and load-dependent
WALL_TOLERANCE = 0.50


def extract_wallclocks(report: Dict[str, Any]) -> Dict[str, float]:
    """Flatten the host-time metrics (``wallclock_threaded`` scenarios and
    the strategy compiler's ``compile_wall_seconds``) into ``scenario-key
    -> wall seconds`` (lower is better).  Wall-clock is machine-dependent,
    so these values feed the *advisory* :func:`check_wallclocks` pass only
    — they are never part of the failing gate."""
    out: Dict[str, float] = {}
    wc = report.get("wallclock_threaded")
    if isinstance(wc, dict):
        for name, s in (wc.get("scenarios") or {}).items():
            if not isinstance(s, dict):
                continue
            try:
                wall = s["after"]["wall_seconds"]
            except (KeyError, TypeError):
                continue
            if isinstance(wall, (int, float)) and not isinstance(wall, bool):
                out[f"{s.get('scenario', name)}/wall"] = float(wall)
    ap = report.get("autopar_strategy")
    if isinstance(ap, dict):
        for c in ap.get("compiles") or []:
            if not isinstance(c, dict) or "scenario" not in c:
                continue
            wall = c.get("compile_wall_seconds")
            if isinstance(wall, (int, float)) and not isinstance(wall, bool):
                out[f"{c['scenario']}/compile_wall"] = float(wall)
    return out


def check_wallclocks(
    root: Path, tolerance: float = WALL_TOLERANCE
) -> List[str]:
    """Advisory wall-clock drift: warning lines for shared scenarios whose
    host wall-clock grew more than ``tolerance`` vs a prior report.  Always
    warnings, never gate failures — two reports may have been measured on
    different machines or under different load."""
    files = bench_files(root)
    if len(files) < 2:
        return []
    newest = files[-1]
    new = extract_wallclocks(json.loads(newest.read_text()))
    warnings: List[str] = []
    for prior in files[:-1]:
        old = extract_wallclocks(json.loads(prior.read_text()))
        for key in sorted(set(new) & set(old)):
            o, n = old[key], new[key]
            if o <= 0:
                continue
            growth = n / o - 1.0
            if growth > tolerance:
                warnings.append(
                    f"{newest.name} vs {prior.name}: {key} wall-clock grew "
                    f"{growth:.0%} ({o:.4g}s -> {n:.4g}s) — advisory only, "
                    f"wall-clock is machine-dependent"
                )
    return warnings


def check_mode_switch(report: Dict[str, Any]) -> List[str]:
    """Intra-report invariant over the pinned Fig-11 scenarios: each
    system's ``chosen_mode`` must be the argmin of its ``mode_times``, and
    System II — the NVLink-pair topology the paper's figure turns on —
    must keep preferring 2D over 1D at t=4.  A violation means the
    compiler would now emit the slower-scoring mode, which is a hard
    failure, not drift: the inputs are pinned and the times simulated.
    Reports that predate the section (or carry a malformed one) are simply
    not checked — the gate never fails on *absent* coverage here, the
    removed-scenario warning in :func:`check` covers that."""
    ap = report.get("autopar_strategy")
    if not isinstance(ap, dict):
        return []
    problems: List[str] = []
    for system, f11 in (ap.get("fig11_mode_switch") or {}).items():
        if not isinstance(f11, dict):
            continue
        times = f11.get("mode_times")
        chosen = f11.get("chosen_mode")
        if not isinstance(times, dict) or chosen not in times:
            continue
        best = min(times, key=times.get)
        if times[chosen] > times[best]:
            problems.append(
                f"{f11.get('scenario', system)}: chose {chosen} "
                f"({times[chosen]:.4g}s) over faster {best} "
                f"({times[best]:.4g}s)"
            )
        if system == "system_ii" and "2d" in times and "1d" in times \
                and times["2d"] >= times["1d"]:
            problems.append(
                f"{f11.get('scenario', system)}: 2D no longer beats 1D on "
                f"System II (2d={times['2d']:.4g}s vs "
                f"1d={times['1d']:.4g}s) — the Fig-11 mode switch regressed"
            )
    return problems


def check_serving(report: Dict[str, Any]) -> List[str]:
    """Intra-report invariants over the ``serving`` section: the latency-
    vs-load sweep must show queueing physics (goodput saturating while
    offered load keeps growing, p99 TTFT rising past the knee), and every
    rank-loss scenario in the MTBF sweep must price a *measurable* SLO
    hit against its fault-free baseline — lower goodput, higher p99.
    Reports that predate the section are not checked; malformed entries
    are skipped like everywhere else in the gate."""
    sv = report.get("serving")
    if not isinstance(sv, dict):
        return []
    problems: List[str] = []

    sweep = [s for s in sv.get("load_sweep") or []
             if isinstance(s, dict) and "scenario" in s]
    sweep = [s for s in sweep
             if isinstance(s.get("offered_req_per_sec"), (int, float))
             and isinstance(s.get("goodput_tokens_per_sec"), (int, float))
             and isinstance(s.get("p99_ttft"), (int, float))]
    sweep.sort(key=lambda s: s["offered_req_per_sec"])
    if len(sweep) >= 3:
        lo, mid, hi = sweep[0], sweep[-2], sweep[-1]
        offered_growth = hi["offered_req_per_sec"] / mid["offered_req_per_sec"]
        goodput_growth = (hi["goodput_tokens_per_sec"]
                          / mid["goodput_tokens_per_sec"]
                          if mid["goodput_tokens_per_sec"] > 0 else 0.0)
        if goodput_growth >= offered_growth:
            problems.append(
                f"{hi['scenario']}: goodput grew {goodput_growth:.2f}x while "
                f"offered load grew {offered_growth:.2f}x — the load sweep "
                f"never saturates, so the rates are not probing the knee"
            )
        if hi["p99_ttft"] <= lo["p99_ttft"]:
            problems.append(
                f"{hi['scenario']}: p99 TTFT past the knee "
                f"({hi['p99_ttft']:.4g}s) is not above the underload p99 "
                f"({lo['p99_ttft']:.4g}s) — queueing delay is not priced"
            )

    for entry in sv.get("mtbf_sweep") or []:
        if not isinstance(entry, dict) or "scenario" not in entry:
            continue
        if not entry.get("failures"):
            continue  # fault-free baseline row
        good = entry.get("goodput_tokens_per_sec")
        base = entry.get("baseline_goodput_tokens_per_sec")
        p99 = entry.get("p99_ttft")
        base_p99 = entry.get("baseline_p99_ttft")
        if isinstance(good, (int, float)) and isinstance(base, (int, float)) \
                and good >= base:
            problems.append(
                f"{entry['scenario']}: goodput under rank loss ({good:.4g} "
                f"tok/s) is not below the fault-free baseline ({base:.4g}) — "
                f"the failure costs nothing"
            )
        if isinstance(p99, (int, float)) \
                and isinstance(base_p99, (int, float)) and p99 <= base_p99:
            problems.append(
                f"{entry['scenario']}: p99 TTFT under rank loss "
                f"({p99:.4g}s) is not above the fault-free baseline "
                f"({base_p99:.4g}s) — the SLO hit is invisible"
            )
    return problems


#: every section the gate knows how to extract metrics from; a report that
#: carries one of these keys with nothing extractable inside is a broken
#: runner (crashed mid-section, emitted [], or wrote malformed entries),
#: not merely thinner coverage
GATED_SECTIONS = (
    "collectives", "vit_system_ii_1d", "sanitizer_fig13b", "overlap_fig13b",
    "projection", "hybrid_projection", "wallclock_threaded",
    "autopar_strategy", "serving",
)


def check_empty_sections(report: Dict[str, Any]) -> List[str]:
    """A known section that is *present but empty* fails with a clear
    message instead of silently extracting nothing (or crashing a naive
    reader with a ``KeyError``).  Absent sections stay legal — older
    reports simply cover less, and the removed-scenario warning in
    :func:`check` handles shrinkage between reports."""
    problems: List[str] = []
    for key in GATED_SECTIONS:
        if key not in report:
            continue
        alone = {key: report[key]}
        if extract_throughputs(alone) or extract_wallclocks(alone):
            continue
        problems.append(
            f"section '{key}' is present but empty — the runner produced "
            f"no measurable scenarios (empty list/dict or malformed "
            f"entries); rerun benchmarks/run_bench.py or drop the section"
        )
    return problems


def compare(
    new: Dict[str, float], old: Dict[str, float], tolerance: float = TOLERANCE
) -> List[Tuple[str, float, float, float]]:
    """Regressions in ``new`` vs ``old`` over shared scenarios: a list of
    ``(scenario, old_throughput, new_throughput, drop_fraction)`` where the
    drop exceeds ``tolerance``."""
    regressions = []
    for key in sorted(set(new) & set(old)):
        o, n = old[key], new[key]
        if o <= 0:
            continue
        drop = 1.0 - n / o
        if drop > tolerance:
            regressions.append((key, o, n, drop))
    return regressions


def bench_files(root: Path) -> List[Path]:
    """``BENCH_<N>.json`` files at the repo root, ordered by N."""
    found = []
    for p in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m:
            found.append((int(m.group(1)), p))
    return [p for _, p in sorted(found)]


def check(
    root: Path,
    tolerance: float = TOLERANCE,
    warnings: Optional[List[str]] = None,
) -> List[str]:
    """Diff the newest report against every prior one; returns human-readable
    regression lines (empty = gate passes).  The newest report's own
    intra-report invariants (:func:`check_empty_sections`,
    :func:`check_mode_switch`, :func:`check_serving`) are checked first —
    those fail even when there is no prior report to diff against.

    Scenario sets are allowed to differ between reports: scenarios only the
    newest report measures are simply new coverage, and scenarios a prior
    report measured that the newest dropped are *warned about* without
    failing the gate — appended to ``warnings`` when a list is passed,
    printed to stderr otherwise, so programmatic callers never get silent
    scenario-set shrinkage — unless a prior report shares nothing at all,
    which means the runner stopped covering prior workloads entirely and
    is a hard problem."""
    files = bench_files(root)
    if not files:
        return []
    newest = files[-1]
    newest_report = json.loads(newest.read_text())
    problems: List[str] = [
        f"{newest.name}: {line}"
        for line in (check_empty_sections(newest_report)
                     + check_mode_switch(newest_report)
                     + check_serving(newest_report))
    ]
    if len(files) < 2:
        return problems
    new = extract_throughputs(newest_report)
    for prior in files[:-1]:
        old = extract_throughputs(json.loads(prior.read_text()))
        shared = len(set(new) & set(old))
        if shared == 0:
            problems.append(
                f"{newest.name} vs {prior.name}: no shared scenarios — "
                f"the benchmark runner stopped covering prior workloads"
            )
            continue
        removed = sorted(set(old) - set(new))
        if removed:
            message = (
                f"{newest.name} vs {prior.name}: {len(removed)} "
                f"scenario(s) no longer measured: {', '.join(removed)}"
            )
            if warnings is not None:
                warnings.append(message)
            else:
                print(f"bench gate warning: {message}", file=sys.stderr)
        for key, o, n, drop in compare(new, old, tolerance):
            problems.append(
                f"{newest.name} vs {prior.name}: {key} dropped {drop:.1%} "
                f"({o:.4g} -> {n:.4g} sim throughput)"
            )
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="directory holding BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = ap.parse_args()
    root = Path(args.root)
    files = bench_files(root)
    if not files:
        print(f"bench gate: no reports under {root} — nothing to check")
        return 0
    warnings: List[str] = []
    problems = check(root, args.tolerance, warnings=warnings)
    warnings.extend(check_wallclocks(root))
    for line in warnings:
        print(f"bench gate warning: {line}")
    if problems:
        print(f"bench gate FAILED ({len(problems)} regression(s)):")
        for line in problems:
            print(f"  {line}")
        return 1
    names = ", ".join(p.name for p in files[:-1])
    if names:
        print(
            f"bench gate OK: {files[-1].name} holds throughput within "
            f"{args.tolerance:.0%} of {names}"
        )
    else:
        print(
            f"bench gate OK: {files[-1].name} intra-report invariants hold "
            f"(no prior report to diff)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
