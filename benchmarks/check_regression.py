"""Perf-regression gate over the ``BENCH_<N>.json`` trajectory.

Each PR's :mod:`run_bench` writes a machine-readable report; this gate
diffs the newest one against every prior report and fails when a scenario
both files measure lost more than 10% *simulated* throughput.  Simulated
metrics are deterministic — same code, same numbers — so any drift is a
real change to the cost model, the collective algorithms or a scheduler,
never measurement noise; the threshold only leaves room for intentional
model refinements that are documented in the PR.

Run standalone (exit 1 on regression)::

    python benchmarks/check_regression.py [--root .] [--tolerance 0.10]

or as the pytest lane ``pytest -m bench_gate``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: default allowed fractional throughput drop per shared scenario
TOLERANCE = 0.10


def extract_throughputs(report: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a run_bench report into ``scenario-key -> simulated
    throughput`` (higher is better).  Seconds-valued metrics are inverted
    so every entry compares the same way.  Unknown sections are ignored —
    older reports simply share fewer keys with newer ones."""
    out: Dict[str, float] = {}
    for c in report.get("collectives", []):
        scen = c["scenario"]
        out[f"{scen}/ring"] = 1.0 / c["ring_seconds"]
        out[f"{scen}/auto"] = 1.0 / c["auto_seconds"]
    for v in report.get("vit_system_ii_1d", []):
        scen = v["scenario"]
        for algo in ("ring", "auto"):
            if algo in v:
                out[f"{scen}/{algo}"] = v[algo]["img_per_sec"]
    san = report.get("sanitizer_fig13b")
    if san:
        for name, var in san.get("variants", {}).items():
            out[f"{san['scenario']}/{name}"] = var["sim_samples_per_sec"]
    ovl = report.get("overlap_fig13b")
    if ovl:
        for mode in ("overlap_off", "overlap_on"):
            if mode in ovl:
                out[f"{ovl['scenario']}/{mode}"] = ovl[mode]["sim_img_per_sec"]
    return out


def compare(
    new: Dict[str, float], old: Dict[str, float], tolerance: float = TOLERANCE
) -> List[Tuple[str, float, float, float]]:
    """Regressions in ``new`` vs ``old`` over shared scenarios: a list of
    ``(scenario, old_throughput, new_throughput, drop_fraction)`` where the
    drop exceeds ``tolerance``."""
    regressions = []
    for key in sorted(set(new) & set(old)):
        o, n = old[key], new[key]
        if o <= 0:
            continue
        drop = 1.0 - n / o
        if drop > tolerance:
            regressions.append((key, o, n, drop))
    return regressions


def bench_files(root: Path) -> List[Path]:
    """``BENCH_<N>.json`` files at the repo root, ordered by N."""
    found = []
    for p in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m:
            found.append((int(m.group(1)), p))
    return [p for _, p in sorted(found)]


def check(root: Path, tolerance: float = TOLERANCE) -> List[str]:
    """Diff the newest report against every prior one; returns human-readable
    regression lines (empty = gate passes)."""
    files = bench_files(root)
    if len(files) < 2:
        return []
    newest = files[-1]
    new = extract_throughputs(json.loads(newest.read_text()))
    problems: List[str] = []
    for prior in files[:-1]:
        old = extract_throughputs(json.loads(prior.read_text()))
        shared = len(set(new) & set(old))
        if shared == 0:
            problems.append(
                f"{newest.name} vs {prior.name}: no shared scenarios — "
                f"the benchmark runner stopped covering prior workloads"
            )
            continue
        for key, o, n, drop in compare(new, old, tolerance):
            problems.append(
                f"{newest.name} vs {prior.name}: {key} dropped {drop:.1%} "
                f"({o:.4g} -> {n:.4g} sim throughput)"
            )
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="directory holding BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = ap.parse_args()
    root = Path(args.root)
    files = bench_files(root)
    if len(files) < 2:
        print(f"bench gate: {len(files)} report(s) under {root} — nothing to diff")
        return 0
    problems = check(root, args.tolerance)
    if problems:
        print(f"bench gate FAILED ({len(problems)} regression(s)):")
        for line in problems:
            print(f"  {line}")
        return 1
    names = ", ".join(p.name for p in files[:-1])
    print(
        f"bench gate OK: {files[-1].name} holds throughput within "
        f"{args.tolerance:.0%} of {names}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
