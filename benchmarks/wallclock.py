"""Wall-clock scenario harness for the threaded simulator hot paths.

BENCH_6/7 record ``wall_clock_per_simulated_second`` for the projection
scenarios only; this module measures it for the *threaded* runtime — the
DDP ViT Fig-13b step, a materialized ZeRO-offload step and the Fig-13b
sequence-parallel pipeline step — so real simulator speed is tracked along
the BENCH trajectory instead of claimed.

Every scenario returns its simulated metrics (step seconds, wire bytes,
collective calls) next to the wall measurement: the simulated side is
deterministic and gated by the regression gate, the wall side is
machine-dependent and only ever *advisory* (see
``check_regression.extract_wallclocks``).

Used by :mod:`run_bench` (the ``wallclock_threaded`` section of
``BENCH_<N>.json``) and by the pre/post comparison in BENCH_8: the
``before`` numbers in that report were produced by this same harness at
the commit preceding the fast-path work (recorded in
``wallclock_baseline.json``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.cluster import system_ii, system_iii
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext
from repro.runtime import SpmdRuntime

#: repeats per scenario; the minimum wall time is reported (standard
#: practice for timing noisy single runs)
REPEATS = 3


def _time_best(fn: Callable[[], Dict[str, Any]], repeats: int = REPEATS
               ) -> Dict[str, Any]:
    """Run ``fn`` ``repeats`` times; keep the simulated metrics of the last
    run (they are identical every time — asserted) and the best wall."""
    best: Optional[Dict[str, Any]] = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        metrics = fn()
        wall = time.perf_counter() - t0
        if best is not None:
            sim_prev = {k: v for k, v in best.items() if k != "wall_seconds"}
            sim_now = dict(metrics)
            assert sim_now == sim_prev, (
                f"simulated metrics drifted between repeats: "
                f"{sim_prev} vs {sim_now}"
            )
        if best is None or wall < best["wall_seconds"]:
            best = dict(metrics)
            best["wall_seconds"] = wall
    assert best is not None
    best["wall_seconds"] = round(best["wall_seconds"], 4)
    best["wall_clock_per_simulated_second"] = round(
        best["wall_seconds"] / best["sim_step_seconds"], 3
    )
    return best


def ddp_vit_fig13b(repeats: int = REPEATS) -> Dict[str, Any]:
    """The BENCH_5 DDP ViT Fig-13b overlap scenario (spec mode, 8 ranks,
    overlap on) — the headline threaded wall-clock scenario."""
    from repro.autograd import checkpoint
    from repro.nn import TransformerLayer
    from repro.nn.module import Module
    from repro.parallel.data import DistributedDataParallel
    from repro.tensor import Tensor

    from vit_harness import N_PATCHES

    WORLD, LAYERS, HIDDEN, HEADS, BATCH = 8, 16, 3072, 48, 64

    class Stack(Module):
        def __init__(self):
            super().__init__()
            for i in range(LAYERS):
                setattr(
                    self, f"layer{i}",
                    TransformerLayer(HIDDEN, HEADS, dtype="float16"),
                )
            self.layers = [getattr(self, f"layer{i}") for i in range(LAYERS)]

        def forward(self, x):
            for l in self.layers:
                x = checkpoint(l, x)
            return x

    def once() -> Dict[str, Any]:
        cluster = system_ii()
        cluster.reset()
        rt = SpmdRuntime(cluster, WORLD, comm_overlap=True)

        def prog(ctx):
            pc = ParallelContext(ctx, Config.from_dict({}))
            ddp = DistributedDataParallel(Stack(), pc, overlap=True)
            x = Tensor(
                SpecArray((BATCH // WORLD, N_PATCHES, HIDDEN), "float16"),
                requires_grad=True,
            )
            t0 = ctx.clock.time
            ddp(x).sum().backward()
            ddp.sync()
            return ctx.clock.time - t0

        step = max(rt.run(prog, materialize=False))
        counters = rt.group(tuple(range(WORLD))).counters
        return {
            "sim_step_seconds": step,
            "wire_bytes": counters.bytes_total,
            "collective_calls": counters.calls_total,
        }

    out = _time_best(once, repeats)
    out["scenario"] = "system_ii/vit_ddp_fig13b/8gpu/threaded_wall"
    return out


def zero_mlp_step(repeats: int = REPEATS) -> Dict[str, Any]:
    """Materialized ZeRO-offload training steps (4 ranks): chunked fp16
    parameters, all-gather fetch + reduce-scatter grads + chunk Adam —
    the ndarray-churn-heavy path the buffer pool targets."""
    import numpy as np

    from repro.autograd import ops
    from repro.cluster import uniform_cluster
    from repro.comm import Communicator
    from repro.comm.cost import CostModel
    from repro.nn import CrossEntropyLoss, Linear, Module
    from repro.zero import ZeroOffloadEngine
    from repro.zero.policies import NoOffloadPolicy

    WORLD, H, C, B, STEPS = 4, 256, 16, 32, 2

    class Block(Module):
        def __init__(self, seed, out):
            super().__init__()
            self.lin = Linear(H, out, rng=np.random.default_rng(seed))

        def forward(self, x):
            y = self.lin(x)
            return ops.gelu(y) if self.lin.out_features == H else y

    def once() -> Dict[str, Any]:
        rt = SpmdRuntime(uniform_cluster(WORLD))
        crit = CrossEntropyLoss()
        rng = np.random.default_rng(3)
        X = rng.standard_normal((WORLD * B, H)).astype(np.float32)
        Y = rng.integers(0, C, WORLD * B)

        def prog(ctx):
            comm = Communicator.world(ctx)
            blocks = [Block(41, H), Block(42, H), Block(43, C)]
            pol = NoOffloadPolicy(
                ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank
            )
            eng = ZeroOffloadEngine(
                ctx, blocks, comm, pol, criterion=crit,
                chunk_mb=0.05, lr=1e-2, param_dtype="float32",
            )
            t0 = ctx.clock.time
            for _ in range(STEPS):
                eng.train_step(
                    X[ctx.rank * B:(ctx.rank + 1) * B],
                    Y[ctx.rank * B:(ctx.rank + 1) * B],
                )
            return ctx.clock.time - t0

        step = max(rt.run(prog))
        counters = rt.group(tuple(range(WORLD))).counters
        return {
            "sim_step_seconds": step,
            "wire_bytes": counters.bytes_total,
            "collective_calls": counters.calls_total,
        }

    out = _time_best(once, repeats)
    out["scenario"] = "uniform/zero_mlp/4gpu/threaded_wall"
    return out


def pipeline_sp_fig13b(repeats: int = REPEATS) -> Dict[str, Any]:
    """The Fig-13b sequence-parallel BERT step (SP 4-way x 2 pipeline
    stages on System III, spec mode) — the p2p/mailbox-heavy path."""
    from bench_fig13_sp_throughput import step_time

    STAGES, BATCH = 2, 32
    world = 4 * STAGES

    def once() -> Dict[str, Any]:
        rt = SpmdRuntime(system_iii(n_nodes=world // 4), world)
        sim_seconds = step_time("sp", BATCH, pp_stages=STAGES, runtime=rt)
        wire = sum(g.counters.bytes_total for g in rt._groups.values())
        calls = sum(g.counters.calls_total for g in rt._groups.values())
        return {
            "sim_step_seconds": sim_seconds,
            "wire_bytes": wire,
            "collective_calls": calls,
        }

    out = _time_best(once, repeats)
    out["scenario"] = f"system_iii/bert_sp_fig13b/{world}gpu/pp{STAGES}/threaded_wall"
    return out


#: scenario key -> harness, the deterministic merge order for reports
SCENARIOS = {
    "ddp_vit": ddp_vit_fig13b,
    "zero": zero_mlp_step,
    "pipeline": pipeline_sp_fig13b,
}


def measure_all(repeats: int = REPEATS) -> Dict[str, Dict[str, Any]]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


if __name__ == "__main__":
    import json
    import sys

    out = measure_all()
    json.dump(out, sys.stdout, indent=2)
    sys.stdout.write("\n")
