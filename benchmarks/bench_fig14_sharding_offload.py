"""Fig 14 + §5.4: sharding & offloading — Colossal-AI's adaptive tensor
placement vs the DeepSpeed ZeRO-3 static-offload baseline.

GPT-2 10B, batch 4 per GPU, data parallelism scaled 1 -> 8 GPUs on
System II; plus OPT-13B at batch 32 on 8 GPUs.  All spec-mode (memory,
FLOP and PCIe/collective traffic fully accounted; no 10B-parameter arrays
materialized).

Expected shape: the static policy offloads everything even when GPU memory
is free, paying host transfers and CPU Adam each step; the adaptive policy
keeps chunks on the GPU while they fit, so it wins at every scale — the
paper reports 1.33x for OPT-13B b=32 on 8 GPUs.
"""

import pytest

from repro.cluster import system_ii
from repro.comm import Communicator, SpecArray
from repro.comm.cost import CostModel
from repro.models import build_gpt_blocks, gpt2_10b, opt_13b
from repro.runtime import SpmdRuntime
from repro.utils.units import GB
from repro.zero import AdaptivePolicy, StaticPolicy, ZeroOffloadEngine


def _run(cfg, policy_cls, n_gpus, batch, headroom_gb=10):
    cluster = system_ii()
    rt = SpmdRuntime(cluster, world_size=n_gpus)

    def prog(ctx):
        comm = Communicator.world(ctx)
        blocks, criterion = build_gpt_blocks(cfg)
        kwargs = (
            dict(activation_headroom=headroom_gb * GB)
            if policy_cls is AdaptivePolicy
            else {}
        )
        policy = policy_cls(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank, **kwargs)
        engine = ZeroOffloadEngine(
            ctx, blocks, comm, policy, criterion=criterion, chunk_mb=64, lr=1e-4
        )
        ids = SpecArray((batch, cfg.seq_len), "int64")
        engine.train_step(ids, ids)  # placement settles
        t0 = ctx.clock.time
        engine.train_step(ids, ids)
        return (
            ctx.clock.time - t0,
            engine.gpu_param_fraction(),
            ctx.device.memory.peak / GB,
            ctx.cpu.memory.peak / GB,
        )

    return rt.run(prog, materialize=False)[0]


class TestFig14:
    def test_gpt2_10b_scaling(self, benchmark, record_rows):
        cfg = gpt2_10b(seq_len=1024)

        def run():
            out = {}
            for n in (1, 4, 8):
                for name, cls in (("static", StaticPolicy), ("adaptive", AdaptivePolicy)):
                    dt, frac, gpeak, cpeak = _run(cfg, cls, n, batch=4)
                    out[(n, name)] = (n * 4 / dt, frac, gpeak, cpeak)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for n in (1, 4, 8):
            for name in ("static", "adaptive"):
                thr, frac, gpeak, cpeak = res[(n, name)]
                speed = res[(n, "adaptive")][0] / res[(n, "static")][0]
                rows.append(
                    [n, name, thr, f"{100*frac:.0f}%", gpeak, cpeak,
                     f"{speed:.2f}x" if name == "adaptive" else "-"]
                )
        record_rows(
            "Fig 14: GPT-2 10B throughput, batch 4/GPU, ZeRO-3 + offload (System II)",
            ["gpus", "policy", "samples/s", "gpu-resident", "gpu peak GB", "cpu peak GB", "adaptive/static"],
            rows,
            notes="static (DeepSpeed-like) pins everything on the host even\n"
            "with free GPU memory; adaptive keeps chunks on-GPU and wins "
            "at every scale",
        )
        for n in (1, 4, 8):
            assert res[(n, "adaptive")][0] > res[(n, "static")][0]
        # throughput scales with data parallelism
        assert res[(8, "adaptive")][0] > 3 * res[(1, "adaptive")][0]
        # static keeps nothing resident; adaptive keeps plenty once sharded
        assert res[(8, "static")][1] == 0.0
        assert res[(8, "adaptive")][1] > 0.5

    def test_opt_13b_batch32(self, benchmark, record_rows):
        cfg = opt_13b(seq_len=1024)

        def run():
            out = {}
            for name, cls in (("static", StaticPolicy), ("adaptive", AdaptivePolicy)):
                # batch 32 needs ~2.7 GB of attention scores per recomputed
                # block: reserve a large activation headroom
                out[name] = _run(cfg, cls, 8, batch=32, headroom_gb=65)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        speedup = res["static"][0] / res["adaptive"][0]
        rows = [
            [name, 8 * 32 / dt, f"{100*frac:.0f}%", gpeak, cpeak]
            for name, (dt, frac, gpeak, cpeak) in res.items()
        ]
        record_rows(
            "§5.4: OPT-13B, batch 32/GPU, 8 GPUs (System II)",
            ["policy", "samples/s", "gpu-resident", "gpu peak GB", "cpu peak GB"],
            rows,
            notes=f"adaptive speedup over static: {speedup:.2f}x (paper: 1.33x).\n"
            "at batch 32 the step is compute-bound, so against our *idealized*\n"
            "static baseline (chunked transfers, same substrate) the placement\n"
            "policies converge; the paper's 1.33x is against real DeepSpeed,\n"
            "whose per-tensor offload overheads our baseline does not include.\n"
            "The placement advantage shows at small batch (Fig 14 above).",
        )
        assert speedup >= 0.99
        # both policies saturate GPU memory, as the paper observes
        assert res["static"][2] > 40 and res["adaptive"][2] > 40
