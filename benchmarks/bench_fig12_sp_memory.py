"""Fig 12: memory efficiency of sequence parallelism vs 1D tensor
parallelism (BERT-Base, System III A100-40GB nodes).

(a) max batch size at sequence length 512; (b) max sequence length at
batch 64 — both found by OOM-bounded search in spec mode, exactly the
paper's method.  1D TP runs on 4 GPUs (the head-divisibility constraint of
BERT-Base's 12 heads limits it to 4/6/12); SP runs on 4 and 8.

Expected shape: SP reaches a multiple of 1D's max batch (paper: up to
4.44x at 12 GPUs) and a longer max sequence (paper: 1.18x), because 1D
replicates the sequence-length-dependent activations that SP partitions.
"""

import pytest

import repro
from repro.cluster import system_iii
from repro.cluster.device import DeviceOutOfMemoryError
from repro.comm.payload import SpecArray
from repro.models import build_bert
from repro.models.bert import bert_base
from repro.runtime import RemoteRankError

MEM_NODES = 3  # 3 nodes x 4 A100-40GB (the 12-GPU point needs 3)


def _fits(mode, world, batch, seq):
    config = dict(parallel=dict(tensor=dict(size=world, mode=mode)))
    cfg = bert_base(seq_len=seq)

    def probe(ctx, pc):
        bundle = build_bert(cfg, pc, mode=mode)
        ids = SpecArray((batch, seq), "int64")
        out = bundle.model(bundle.shard_input(ids))
        bundle.loss_fn(out, bundle.shard_target(ids)).backward()

    try:
        repro.launch(
            config, system_iii(n_nodes=MEM_NODES), probe,
            world_size=world, materialize=False,
        )
        return True
    except RemoteRankError as e:
        if isinstance(e.cause, DeviceOutOfMemoryError):
            return False
        raise


def _search(fits_fn, start, step, cap):
    lo, hi = 0, start
    while hi <= cap and fits_fn(hi):
        lo, hi = hi, hi * 2
    while hi - lo > step:
        mid = (lo + hi) // 2 // step * step
        if mid == lo:
            break
        if fits_fn(mid):
            lo = mid
        else:
            hi = mid
    return lo


class TestFig12:
    def test_max_batch_seq512(self, benchmark, record_rows):
        # seq 504 (not 512): the closest length divisible by every rank
        # count in play (4, 8, 12) so the sequence dimension shards evenly
        SEQ = 504

        def run():
            out = {}
            out[("1d", 4)] = _search(lambda b: _fits("1d", 4, b, SEQ), 8, 4, 4096)
            out[("1d", 12)] = _search(lambda b: _fits("1d", 12, b, SEQ), 8, 12, 8192)
            out[("sequence", 4)] = _search(lambda b: _fits("sequence", 4, b, SEQ), 8, 4, 4096)
            out[("sequence", 8)] = _search(lambda b: _fits("sequence", 8, b, SEQ), 8, 8, 8192)
            out[("sequence", 12)] = _search(lambda b: _fits("sequence", 12, b, SEQ), 12, 12, 16384)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        ratio4 = res[("sequence", 4)] / res[("1d", 4)]
        ratio12 = res[("sequence", 12)] / res[("1d", 12)]
        rows = [[m, w, b] for (m, w), b in res.items()]
        record_rows(
            "Fig 12a: max batch size, BERT-Base seq~512 (A100-40GB)",
            ["mode", "gpus", "max batch"],
            rows,
            notes=f"SP/1D max-batch ratio: {ratio4:.2f}x at 4 GPUs, "
            f"{ratio12:.2f}x at 12 (paper: up to 4.44x at 12 GPUs)",
        )
        assert res[("sequence", 4)] > res[("1d", 4)]
        assert res[("sequence", 8)] > res[("sequence", 4)]
        assert ratio12 > ratio4  # the SP advantage grows with ranks

    def test_max_seq_batch64(self, benchmark, record_rows):
        def run():
            out = {}
            out[("1d", 4)] = _search(lambda s: _fits("1d", 4, 64, s), 256, 64, 32768)
            out[("sequence", 4)] = _search(lambda s: _fits("sequence", 4, 64, s), 256, 64, 32768)
            out[("sequence", 8)] = _search(lambda s: _fits("sequence", 8, 64, s), 256, 64, 65536)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        ratio = res[("sequence", 4)] / res[("1d", 4)]
        rows = [[m, w, s] for (m, w), s in res.items()]
        record_rows(
            "Fig 12b: max sequence length, BERT-Base batch=64 (A100-40GB)",
            ["mode", "gpus", "max seq"],
            rows,
            notes=f"SP/1D max-seq ratio at 4 GPUs: {ratio:.2f}x (paper: 1.18x);\n"
            "sub-linear because self-attention memory stays quadratic in S",
        )
        assert res[("sequence", 4)] >= res[("1d", 4)]
        assert res[("sequence", 8)] > res[("sequence", 4)]
