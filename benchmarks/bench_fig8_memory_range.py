"""Fig 8: memory range tests for tensor parallelism.

The paper builds a model of two linear layers and sweeps (a, b) batch size
and (c, d) hidden size, measuring the max allocated CUDA memory of one
forward+backward pass; 1D/2D/2.5D on 4 GPUs and 1D/2.5D(d=2)/3D on 8 GPUs.
We run the identical experiment in spec mode against the simulated A100s'
memory pools (System I) and report per-rank peak bytes.

Expected shape: 1D >> 2D/2.5D/3D because 1D replicates layer inputs and
outputs while the advanced modes partition them; at the large end the
paper reports 2.5D/3D peaks 44-74% below 1D.
"""

import pytest

import repro
from repro.cluster import uniform_cluster
from repro.comm import SpecArray
from repro.context import ParallelMode
from repro.tensor import Tensor
from repro.utils.units import MB

SEQ = 512
DTYPE = "float16"


def _two_linear(mode, pc, hidden):
    """The paper's two-linear-layer model, per mode."""
    if mode == "1d":
        from repro.parallel.tensor1d import ColumnParallelLinear, RowParallelLinear

        comm = pc.comm(ParallelMode.TENSOR)
        l1 = ColumnParallelLinear(hidden, hidden, comm, bias=False, dtype=DTYPE)
        l2 = RowParallelLinear(hidden, hidden, comm, bias=False, dtype=DTYPE)
        return lambda x: l2(l1(x)), (l1, l2)
    if mode == "2d":
        from repro.parallel.tensor2d import Linear2D

        l1 = Linear2D(hidden, hidden, pc, bias=False, dtype=DTYPE)
        l2 = Linear2D(hidden, hidden, pc, bias=False, dtype=DTYPE)
        return lambda x: l2(l1(x)), (l1, l2)
    if mode == "2.5d":
        from repro.parallel.tensor25d import Linear25D

        l1 = Linear25D(hidden, hidden, pc, bias=False, dtype=DTYPE)
        l2 = Linear25D(hidden, hidden, pc, bias=False, dtype=DTYPE)
        return lambda x: l2(l1(x)), (l1, l2)
    from repro.parallel.tensor3d import LAYOUT_JK, Linear3D

    l1 = Linear3D(hidden, hidden, pc, LAYOUT_JK, bias=False, dtype=DTYPE)
    l2 = Linear3D(hidden, hidden, pc, LAYOUT_JK.flipped(), bias=False, dtype=DTYPE)
    return lambda x: l2(l1(x)), (l1, l2)


def _local_input(mode, pc, batch, hidden):
    if mode == "1d":
        shape = (batch, SEQ, hidden)
    elif mode == "2d":
        q = pc.summa_dim
        shape = (batch // q, SEQ, hidden // q)
    elif mode == "2.5d":
        q, d = pc.tesseract_dim, pc.tesseract_dep
        shape = (batch // (d * q), SEQ, hidden // q)
    else:
        l = pc.cubic_dim
        shape = (batch // (l * l), SEQ, hidden // l)
    return SpecArray(shape, DTYPE)


def _peak_mb(mode, world, depth, batch, hidden):
    tdict = dict(size=world, mode=mode)
    if mode == "2.5d":
        tdict["depth"] = depth
    config = dict(parallel=dict(tensor=tdict))

    def prog(ctx, pc):
        fwd, _layers = _two_linear(mode, pc, hidden)
        x = Tensor(_local_input(mode, pc, batch, hidden), requires_grad=True)
        fwd(x).sum().backward()
        return ctx.device.memory.peak / MB

    res = repro.launch(
        config, uniform_cluster(world, memory_gb=80), prog,
        world_size=world, materialize=False,
    )
    return res[0]


CONFIGS_4GPU = [("1d", 1), ("2d", 1), ("2.5d", 1)]
CONFIGS_8GPU = [("1d", 1), ("2.5d", 2), ("3d", 1)]


class TestFig8:
    def test_batch_sweep_4gpu(self, benchmark, record_rows):
        batches = [64, 128, 256, 512]
        hidden = 4096

        def run():
            return {
                m: [_peak_mb(m, 4, d, b, hidden) for b in batches]
                for m, d in CONFIGS_4GPU
            }

        peaks = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [[m] + v for m, v in peaks.items()]
        record_rows(
            "Fig 8a: peak memory (MiB/GPU), batch sweep, 4 GPUs, h=4096",
            ["mode"] + [f"b={b}" for b in batches],
            rows,
        )
        for b_idx in range(len(batches)):
            assert peaks["2d"][b_idx] < peaks["1d"][b_idx]
            assert peaks["2.5d"][b_idx] < peaks["1d"][b_idx]

    def test_batch_sweep_8gpu(self, benchmark, record_rows):
        batches = [64, 128, 256, 512]
        hidden = 4096

        def run():
            return {
                m: [_peak_mb(m, 8, d, b, hidden) for b in batches]
                for m, d in CONFIGS_8GPU
            }

        peaks = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [[m] + v for m, v in peaks.items()]
        reduction_25 = 1 - peaks["2.5d"][-1] / peaks["1d"][-1]
        reduction_3d = 1 - peaks["3d"][-1] / peaks["1d"][-1]
        record_rows(
            "Fig 8b: peak memory (MiB/GPU), batch sweep, 8 GPUs, h=4096",
            ["mode"] + [f"b={b}" for b in batches],
            rows,
            notes=f"at b=512: 2.5D {100*reduction_25:.0f}% and 3D "
            f"{100*reduction_3d:.0f}% below 1D (paper: 44% / 65%)",
        )
        assert reduction_25 > 0.3
        assert reduction_3d > 0.5

    def test_hidden_sweep_8gpu(self, benchmark, record_rows):
        hiddens = [4096, 8192, 16384]
        batch = 64

        def run():
            return {
                m: [_peak_mb(m, 8, d, batch, h) for h in hiddens]
                for m, d in CONFIGS_8GPU
            }

        peaks = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [[m] + v for m, v in peaks.items()]
        reduction_25 = 1 - peaks["2.5d"][-1] / peaks["1d"][-1]
        reduction_3d = 1 - peaks["3d"][-1] / peaks["1d"][-1]
        record_rows(
            "Fig 8d: peak memory (MiB/GPU), hidden sweep, 8 GPUs, b=64",
            ["mode"] + [f"h={h}" for h in hiddens],
            rows,
            notes=f"at h=16384: 2.5D {100*reduction_25:.0f}% and 3D "
            f"{100*reduction_3d:.0f}% below 1D (paper: 62% / 74.2%)",
        )
        assert reduction_25 > 0.4
        assert reduction_3d > 0.55

    def test_hidden_sweep_4gpu(self, benchmark, record_rows):
        hiddens = [4096, 8192, 16384]
        batch = 64

        def run():
            return {
                m: [_peak_mb(m, 4, d, batch, h) for h in hiddens]
                for m, d in CONFIGS_4GPU
            }

        peaks = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [[m] + v for m, v in peaks.items()]
        record_rows(
            "Fig 8c: peak memory (MiB/GPU), hidden sweep, 4 GPUs, b=64",
            ["mode"] + [f"h={h}" for h in hiddens],
            rows,
        )
        for i in range(len(hiddens)):
            assert peaks["2d"][i] < peaks["1d"][i]
