"""Fig 7: convergence of ViT under multi-dimensional tensor parallelism.

The paper trains ViT on ImageNet-1k for 250 epochs and shows the test
accuracy curves of 2D/2.5D/3D tensor parallelism coinciding with PyTorch
data-parallel training.  We reproduce the *claim* — arithmetic correctness
and numerical stability of multi-dim TP — by training a ViT on the
synthetic image task under every mode with identical seeds and verifying
the per-epoch accuracy curves coincide (they are bit-identical up to
float32 noise, a stronger statement than the paper's visual overlap).
"""

import numpy as np
import pytest

import repro
from repro.cluster import uniform_cluster
from repro.data import DataLoader, synthetic_image_classification
from repro.models import ViTConfig, build_vit
from repro.optim import AdamW
from repro.tensor import Tensor
from repro.trainer import Accuracy

VIT = ViTConfig(
    image_size=16, patch_size=4, in_channels=3,
    hidden_size=32, n_layers=2, n_heads=4, n_classes=4, mlp_ratio=2, seed=3,
)
EPOCHS = 5
MODES = [
    ("data", 4, {}),  # the paper's "Torch DDP" baseline
    ("1d", 4, dict(parallel=dict(tensor=dict(size=4, mode="1d")))),
    ("2d", 4, dict(parallel=dict(tensor=dict(size=4, mode="2d")))),
    ("2.5d", 8, dict(parallel=dict(tensor=dict(size=8, mode="2.5d", depth=2)))),
    ("3d", 8, dict(parallel=dict(tensor=dict(size=8, mode="3d")))),
]


def _datasets():
    # one generator call => train and test share the class prototypes
    X, y = synthetic_image_classification(
        512, image_size=16, channels=3, n_classes=4, noise=3.0, seed=11
    )
    return (X[:384], y[:384]), (X[384:], y[384:])


def _run_mode(mode, world, config):
    (Xtr, ytr), (Xte, yte) = _datasets()

    def train(ctx, pc):
        bundle = build_vit(VIT, pc, mode=mode)
        engine = repro.initialize(
            bundle.model,
            AdamW(bundle.model.parameters(), lr=1e-3, weight_decay=0.0),
            None, pc=pc,
        )
        loader = DataLoader(Xtr, ytr, batch_size=32, seed=0)
        acc_curve = []
        for _ in range(EPOCHS):
            for data, label in loader:
                engine.zero_grad()
                out = engine(Tensor(bundle.shard_input(data)))
                loss = bundle.loss_fn(out, bundle.shard_target(label))
                engine.backward(loss)
                engine.step()
            # test accuracy from the gathered (full-batch) logits
            metric = Accuracy()
            from repro.autograd import no_grad

            with no_grad():
                for data, label in DataLoader(Xte, yte, batch_size=32, shuffle=False):
                    out = engine(Tensor(bundle.shard_input(data)))
                    metric.update(np.asarray(bundle.gather_output(out)), label)
            acc_curve.append(metric.value)
        return acc_curve

    return repro.launch(config, uniform_cluster(world), train, world_size=world)[0]


class TestFig7:
    def test_convergence_curves_coincide(self, benchmark, record_rows):
        def run():
            return {m: _run_mode(m, w, c) for m, w, c in MODES}

        curves = benchmark.pedantic(run, rounds=1, iterations=1)
        ref = np.array(curves["data"])
        rows = []
        for mode, curve in curves.items():
            drift = float(np.abs(np.array(curve) - ref).max())
            rows.append([mode] + [f"{a:.3f}" for a in curve] + [f"{drift:.1e}"])
        record_rows(
            "Fig 7: ViT test-accuracy per epoch (synthetic ImageNet substitute)",
            ["mode"] + [f"ep{e+1}" for e in range(EPOCHS)] + ["max dev vs DP"],
            rows,
            notes="paper: curves of 2D/2.5D/3D align with data parallel;\n"
            "here they are identical to float32 tolerance",
        )
        # learning happened and every mode matches the DP curve
        assert ref[-1] >= 0.5 and ref[-1] >= ref[0]
        for mode, curve in curves.items():
            np.testing.assert_allclose(curve, ref, atol=0.02)
