"""Ablations of the §3.2 design choices.

* **Fig 6 — fp16 storage reuse**: gradients reuse the fp16 parameter shard
  storage during backward (the fp32 master lives in the optimizer state),
  cutting model-data memory.
* **Chunked vs per-chunk-size offload**: large chunks amortize the
  per-message alpha and ride the bandwidth ramp (the PatrickStar argument
  for chunks).
* **Activation checkpointing**: trade one extra forward for
  O(layer-inputs) activation memory.
"""

import pytest

from repro.autograd import checkpoint
from repro.cluster import system_ii, uniform_cluster
from repro.comm import Communicator, SpecArray
from repro.comm.cost import CostModel
from repro.models import GPTConfig, build_gpt_blocks
from repro.nn import TransformerLayer
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor
from repro.utils.units import GB, MB
from repro.zero import StaticPolicy, ZeroOffloadEngine

GPT_SMALL = GPTConfig(
    vocab_size=50257, hidden_size=1536, n_layers=12, n_heads=16, seq_len=1024
)


def _offload_run(chunk_mb: float, reuse: bool):
    """(simulated step seconds, gpu peak, cpu peak) for one ZeRO-offload
    step of a ~0.5B GPT under the static policy."""
    cluster = system_ii()
    rt = SpmdRuntime(cluster, world_size=4)

    def prog(ctx):
        comm = Communicator.world(ctx)
        blocks, criterion = build_gpt_blocks(GPT_SMALL)
        policy = StaticPolicy(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank)
        engine = ZeroOffloadEngine(
            ctx, blocks, comm, policy, criterion=criterion,
            chunk_mb=chunk_mb, reuse_fp16_storage=reuse, lr=1e-4,
        )
        ids = SpecArray((4, GPT_SMALL.seq_len), "int64")
        t0 = ctx.clock.time
        engine.train_step(ids, ids)
        return ctx.clock.time - t0, ctx.device.memory.peak, ctx.cpu.memory.peak

    return rt.run(prog, materialize=False)[0]


class TestFig6MemoryReuse:
    def test_fp16_storage_reuse(self, benchmark, record_rows):
        def run():
            return {
                "reuse on": _offload_run(chunk_mb=32, reuse=True),
                "reuse off": _offload_run(chunk_mb=32, reuse=False),
            }

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [name, t, gp / MB, cp / GB] for name, (t, gp, cp) in res.items()
        ]
        saved = res["reuse off"][2] - res["reuse on"][2]
        record_rows(
            "Fig 6: fp16 grad storage reuse (GPT 0.5B, static offload)",
            ["variant", "step (s)", "gpu peak MiB", "cpu peak GiB"],
            rows,
            notes=f"reuse avoids a separate grad-shard allocation "
            f"({saved / MB:.0f} MiB on the shard device)",
        )
        assert res["reuse on"][2] < res["reuse off"][2]


class TestChunkSizeAblation:
    def test_chunk_size_sweep(self, benchmark, record_rows):
        sizes = [1, 8, 64]

        def run():
            return {mb: _offload_run(chunk_mb=mb, reuse=True) for mb in sizes}

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [[f"{mb} MiB", t, gp / MB] for mb, (t, gp, cp) in res.items()]
        record_rows(
            "Ablation: offload chunk size (GPT 0.5B, static offload)",
            ["chunk size", "step (s)", "gpu peak MiB"],
            rows,
            notes="small chunks pay per-transfer latency and ride the low end\n"
            "of the bandwidth ramp — the reason Colossal-AI adopts chunks (§3.2)",
        )
        times = [res[mb][0] for mb in sizes]
        assert times[0] > times[-1]  # 1 MiB chunks slower than 64 MiB


class TestCheckpointAblation:
    def test_memory_time_trade(self, benchmark, record_rows):
        layers, hidden, heads, batch, seq = 8, 1024, 16, 16, 512

        def one(use_ckpt):
            rt = SpmdRuntime(uniform_cluster(1, memory_gb=80))

            def prog(ctx):
                stack = [
                    TransformerLayer(hidden, heads, dtype="float16")
                    for _ in range(layers)
                ]
                x = Tensor(SpecArray((batch, seq, hidden), "float16"), requires_grad=True)
                t0 = ctx.clock.time
                h = x
                for layer in stack:
                    h = checkpoint(layer, h) if use_ckpt else layer(h)
                h.sum().backward()
                return ctx.clock.time - t0, ctx.device.memory.peak

            return rt.run(prog, materialize=False)[0]

        def run():
            return {"plain": one(False), "checkpointed": one(True)}

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [[k, t, p / MB] for k, (t, p) in res.items()]
        mem_ratio = res["plain"][1] / res["checkpointed"][1]
        time_ratio = res["checkpointed"][0] / res["plain"][0]
        record_rows(
            "Ablation: activation checkpointing (8-layer Transformer)",
            ["variant", "step (s)", "peak MiB"],
            rows,
            notes=f"{mem_ratio:.1f}x less activation memory for "
            f"{time_ratio:.2f}x the compute time (extra forward)",
        )
        assert res["checkpointed"][1] < 0.5 * res["plain"][1]
        assert 1.0 < time_ratio < 1.7  # ~one extra forward out of fwd+2bwd
