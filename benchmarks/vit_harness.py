"""Shared spec-mode ViT throughput harness for Fig 11 and Table 3.

Builds a per-mode tensor-parallel ViT layer stack with activation
checkpointing (how these models actually fit on 16-80 GB cards), runs one
training step (forward + backward, optimizer excluded as in the paper's
img/sec), and reports the simulated step time; OOM-bounded batch search
doubles the batch until the memory pool overflows.
"""

from __future__ import annotations

from typing import Optional, Tuple

import repro
from repro.autograd import checkpoint
from repro.cluster.device import DeviceOutOfMemoryError
from repro.cluster.machine import ClusterSpec
from repro.comm import SpecArray
from repro.context import ParallelMode
from repro.runtime import RemoteRankError, SpmdRuntime
from repro.tensor import Tensor

DTYPE = "float16"
N_PATCHES = 196  # 224 / 16 squared


def _build_stack(mode: str, pc, n_layers: int, hidden: int, heads: int):
    if mode == "1d":
        from repro.parallel.tensor1d import ParallelTransformerLayer1D

        comm = pc.comm(ParallelMode.TENSOR)
        return [
            ParallelTransformerLayer1D(hidden, heads, comm, dtype=DTYPE)
            for _ in range(n_layers)
        ]
    if mode == "2d":
        from repro.parallel.tensor2d import ParallelTransformerLayer2D

        return [
            ParallelTransformerLayer2D(hidden, heads, pc, dtype=DTYPE)
            for _ in range(n_layers)
        ]
    if mode == "2.5d":
        from repro.parallel.tensor25d import ParallelTransformerLayer25D

        return [
            ParallelTransformerLayer25D(hidden, heads, pc, dtype=DTYPE)
            for _ in range(n_layers)
        ]
    from repro.parallel.tensor3d import LAYOUT_JK, ParallelTransformerLayer3D

    return [
        ParallelTransformerLayer3D(hidden, heads, pc, LAYOUT_JK, dtype=DTYPE)
        for _ in range(n_layers)
    ]


def _local_batch_shape(mode: str, pc, batch: int, hidden: int):
    if mode == "1d":
        return (batch, N_PATCHES, hidden)
    if mode == "2d":
        q = pc.summa_dim
        return (batch // q, N_PATCHES, hidden // q)
    if mode == "2.5d":
        q, d = pc.tesseract_dim, pc.tesseract_dep
        return (batch // (d * q), N_PATCHES, hidden // q)
    l = pc.cubic_dim
    return (batch // (l * l), N_PATCHES, hidden // l)


def batch_divisor(mode: str, world: int, depth: int = 1) -> int:
    import math

    if mode == "1d":
        return 1
    if mode == "2d":
        return math.isqrt(world)
    if mode == "2.5d":
        return depth * math.isqrt(world // depth)
    return round(world ** (1 / 3)) ** 2


def vit_step_time(
    cluster: ClusterSpec,
    world: int,
    mode: str,
    batch: int,
    n_layers: int,
    hidden: int,
    heads: int,
    depth: int = 1,
    comm_algorithm: Optional[str] = None,
) -> Optional[float]:
    """Simulated seconds for one fwd+bwd step; None on OOM."""
    tdict = dict(size=world, mode=mode)
    if mode == "2.5d":
        tdict["depth"] = depth
    config = dict(parallel=dict(tensor=tdict))
    if comm_algorithm is not None:
        config["comm"] = dict(algorithm=comm_algorithm)
    cluster.reset()

    def prog(ctx, pc):
        layers = _build_stack(mode, pc, n_layers, hidden, heads)
        x = Tensor(
            SpecArray(_local_batch_shape(mode, pc, batch, hidden), DTYPE),
            requires_grad=True,
        )
        t0 = ctx.clock.time
        h = x
        for layer in layers:
            h = checkpoint(layer, h)
        h.sum().backward()
        return ctx.clock.time - t0

    try:
        res = repro.launch(config, cluster, prog, world_size=world, materialize=False)
        return res[0]
    except RemoteRankError as e:
        if isinstance(e.cause, DeviceOutOfMemoryError):
            return None
        raise


def best_throughput(
    cluster: ClusterSpec,
    world: int,
    mode: str,
    n_layers: int,
    hidden: int,
    heads: int,
    depth: int = 1,
    max_batch: int = 4096,
    comm_algorithm: Optional[str] = None,
) -> Tuple[int, float]:
    """Paper's Fig 11 method: grow the batch until OOM; return
    (best batch, best global img/sec)."""
    div = batch_divisor(mode, world, depth)
    batch = max(8, div)
    best = (0, 0.0)
    while batch <= max_batch:
        t = vit_step_time(
            cluster, world, mode, batch, n_layers, hidden, heads, depth,
            comm_algorithm=comm_algorithm,
        )
        if t is None:
            break
        thr = batch / t
        if thr > best[1]:
            best = (batch, thr)
        batch *= 2
    return best
