"""Benchmark-suite plumbing.

Each benchmark reproduces one table or figure of the paper.  Besides the
pytest-benchmark timing, every experiment registers its paper-style result
table through the ``record_rows`` fixture; ``pytest_terminal_summary``
prints all registered tables at the end of the run, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
full reproduction report.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence, Tuple

import pytest

# experiment name -> (headers, rows, notes)
_RESULTS: Dict[str, Tuple[Sequence[str], List[Sequence], str]] = {}


@pytest.fixture
def record_rows():
    """record_rows(name, headers, rows, notes="") registers a result table."""

    def _record(name: str, headers: Sequence[str], rows: List[Sequence], notes: str = ""):
        _RESULTS[name] = (list(headers), rows, notes)

    return _record


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 10_000:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    w = terminalreporter.write_line
    w("")
    w("=" * 78)
    w("PAPER REPRODUCTION RESULTS (Colossal-AI, ICPP 2023)")
    w("=" * 78)
    for name in sorted(_RESULTS):
        headers, rows, notes = _RESULTS[name]
        w("")
        w(f"--- {name} ---")
        cells = [[_fmt(c) for c in row] for row in rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(headers)
        ]
        w("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        for r in cells:
            w("  " + "  ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
        if notes:
            for line in notes.strip().splitlines():
                w(f"  note: {line.strip()}")
    w("")
