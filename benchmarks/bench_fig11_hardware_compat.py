"""Fig 11: ViT training throughput on System I vs System II.

The paper's hardware-compatibility experiment: the same ViT configs
(4 GPUs: 64 layers / hidden 3072 / 48 heads; 8 GPUs: hidden 4096 / 64
heads), batch grown until OOM, best throughput per tensor-parallel mode.

Expected shape (paper §5.2-3):
* System I (fully-connected NVLink): 1D wins at 4 and 8 GPUs.
* System II (adjacent-pair NVLink + PCIe): 2D/2.5D beat 1D (paper: +40%
  at 4 GPUs, +20.6% for 2.5D at 8); 3D still loses at this small scale.
"""

import pytest

from repro.cluster import system_i, system_ii

from vit_harness import best_throughput

# (mode, depth) per GPU count — 3D needs a cubic count, so 8 GPUs only
MODES_4 = [("1d", 1), ("2d", 1), ("2.5d", 1)]
MODES_8 = [("1d", 1), ("2.5d", 2), ("3d", 1)]

# paper's model configs, depth reduced 64 -> 16 layers to keep the
# simulation fast (throughput ratios are per-layer properties)
LAYERS = 16
CFG_4 = dict(n_layers=LAYERS, hidden=3072, heads=48)
CFG_8 = dict(n_layers=LAYERS, hidden=4096, heads=64)


def _sweep(mk_cluster, world, modes, cfg):
    out = {}
    for mode, depth in modes:
        b, thr = best_throughput(
            mk_cluster(), world, mode, depth=depth, max_batch=1024, **cfg
        )
        out[mode] = (b, thr)
    return out


class TestFig11:
    def test_system_i(self, benchmark, record_rows):
        def run():
            return {
                4: _sweep(system_i, 4, MODES_4, CFG_4),
                8: _sweep(system_i, 8, MODES_8, CFG_8),
            }

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for world, per_mode in res.items():
            for mode, (b, thr) in per_mode.items():
                rows.append([f"{world} GPUs", mode, b, thr])
        record_rows(
            "Fig 11a: ViT throughput on System I (img/sec, best batch)",
            ["gpus", "mode", "best batch", "throughput"],
            rows,
            notes="paper: 1D wins on fully-connected NVLink at this scale.\n"
            "reproduced at 4 GPUs; at 8 GPUs our alpha-beta model puts the\n"
            "modes within ~9% (paper's 1D edge there comes from per-kernel\n"
            "efficiency losses of small tiles, which the simulator does not\n"
            "model) — contrast with the 1.6-2.8x gaps on System II below",
        )
        assert res[4]["1d"][1] > res[4]["2d"][1]
        assert res[4]["1d"][1] > res[4]["2.5d"][1]
        # on well-connected hardware no mode wins big (unlike System II)
        best8 = max(t for _, t in res[8].values())
        assert best8 < 1.15 * res[8]["1d"][1]

    def test_system_ii(self, benchmark, record_rows):
        def run():
            return {
                4: _sweep(system_ii, 4, MODES_4, CFG_4),
                8: _sweep(system_ii, 8, MODES_8, CFG_8),
            }

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for world, per_mode in res.items():
            for mode, (b, thr) in per_mode.items():
                speedup = 100 * (thr / per_mode["1d"][1] - 1)
                rows.append([f"{world} GPUs", mode, b, thr, f"{speedup:+.1f}%"])
        record_rows(
            "Fig 11b: ViT throughput on System II (img/sec, best batch)",
            ["gpus", "mode", "best batch", "throughput", "vs 1D"],
            rows,
            notes="paper: 2D/2.5D beat 1D by ~40% (4 GPUs) / 20.6% (2.5D, 8 GPUs)",
        )
        assert res[4]["2d"][1] > 1.2 * res[4]["1d"][1]
        assert res[8]["2.5d"][1] > 1.1 * res[8]["1d"][1]

    def test_system_ii_auto_algorithm(self, benchmark, record_rows):
        """Hardware-compatibility experiment with the collective-algorithm
        optimization on: `comm.algorithm="auto"` lets 1D ViT on System II
        recover throughput lost to flat PCIe rings, without ever doing
        worse than the ring baseline."""

        def run():
            out = {}
            for algo in ("ring", "auto"):
                out[algo] = {
                    4: _sweep_algo(system_ii, 4, MODES_4, CFG_4, algo),
                    8: _sweep_algo(system_ii, 8, MODES_8, CFG_8, algo),
                }
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for world in (4, 8):
            for mode in res["ring"][world]:
                thr_ring = res["ring"][world][mode][1]
                thr_auto = res["auto"][world][mode][1]
                rows.append(
                    [f"{world} GPUs", mode, thr_ring, thr_auto,
                     f"{100 * (thr_auto / thr_ring - 1):+.1f}%"]
                )
        record_rows(
            "Fig 11c: ViT on System II, flat ring vs auto algorithm (img/sec)",
            ["gpus", "mode", "ring", "auto", "gain"],
            rows,
            notes="auto selection must never lose to the flat ring",
        )
        for world in (4, 8):
            for mode in res["ring"][world]:
                assert (
                    res["auto"][world][mode][1]
                    >= 0.999 * res["ring"][world][mode][1]
                )


def _sweep_algo(mk_cluster, world, modes, cfg, algo):
    out = {}
    for mode, depth in modes:
        b, thr = best_throughput(
            mk_cluster(), world, mode, depth=depth, max_batch=256,
            comm_algorithm=algo, **cfg
        )
        out[mode] = (b, thr)
    return out
