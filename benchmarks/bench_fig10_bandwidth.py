"""Fig 10: communication bandwidth on Systems I and II (the NCCL
bandwidth-test analogue: broadcasting 125 MB).

(a) pairwise bandwidth between GPU pairs; (b) effective bandwidth of
collective communication over growing GPU groups.

Expected shape: System I sustains the NVLink rate for any pair/group;
System II collapses to PCIe for non-adjacent pairs and for any group
spanning more than one NVLink pair (the paper reports 184 GB/s -> 15 GB/s).
"""

import pytest

from repro.cluster import (
    measure_allreduce_bandwidth,
    measure_broadcast_bandwidth,
    measure_p2p_bandwidth,
    system_i,
    system_ii,
)
from repro.comm import CostModel
from repro.utils.units import GB, MB


class TestFig10:
    def test_pair_bandwidth(self, benchmark, record_rows):
        def run():
            out = {}
            for name, cluster in (("I", system_i()), ("II", system_ii())):
                out[name] = {
                    "adjacent (0-1)": measure_p2p_bandwidth(cluster, 0, 1) / GB,
                    "distant (0-2)": measure_p2p_bandwidth(cluster, 0, 2) / GB,
                    "distant (0-7)": measure_p2p_bandwidth(cluster, 0, 7) / GB,
                }
            return out

        bw = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [pair, bw["I"][pair], bw["II"][pair]]
            for pair in bw["I"]
        ]
        record_rows(
            "Fig 10a: p2p bandwidth, 125 MB transfer (GB/s)",
            ["GPU pair", "System I", "System II"],
            rows,
            notes="paper: System II drops from ~184 GB/s to ~15 GB/s for distant pairs",
        )
        assert bw["I"]["adjacent (0-1)"] == pytest.approx(bw["I"]["distant (0-7)"], rel=0.05)
        assert bw["II"]["adjacent (0-1)"] / bw["II"]["distant (0-2)"] > 5

    def test_collective_bandwidth(self, benchmark, record_rows):
        group_sizes = [2, 4, 8]

        def run():
            out = {}
            for name, cluster in (("I", system_i()), ("II", system_ii())):
                out[name] = [
                    measure_broadcast_bandwidth(cluster, list(range(g))) / GB
                    for g in group_sizes
                ]
            return out

        bw = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [f"{g} GPUs", bw["I"][i], bw["II"][i]]
            for i, g in enumerate(group_sizes)
        ]
        record_rows(
            "Fig 10b: broadcast bandwidth over GPU groups, 125 MB (GB/s)",
            ["group", "System I", "System II"],
            rows,
            notes="System II collapses once the group spans a PCIe hop",
        )
        # System I: flat; System II: cliff after the first NVLink pair
        assert bw["I"][2] > 0.8 * bw["I"][0]
        assert bw["II"][0] / bw["II"][2] > 5

    def test_allreduce_algorithm_bandwidth(self, benchmark, record_rows):
        """Fig 10 with the optimization on: cost-driven algorithm selection
        recovers a large fraction of System I's allreduce bus bandwidth on
        System II by routing most bytes over the NVLink islands."""
        ranks = list(range(8))

        def run():
            out = {}
            for name, cluster in (("I", system_i()), ("II", system_ii())):
                out[name] = {
                    algo: measure_allreduce_bandwidth(
                        cluster, ranks, algorithm=algo
                    ) / GB
                    for algo in ("ring", "tree", "hierarchical", "auto")
                }
            return out

        bw = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [algo, bw["I"][algo], bw["II"][algo]]
            for algo in ("ring", "tree", "hierarchical", "auto")
        ]
        record_rows(
            "Fig 10c: allreduce bus bandwidth over 8 GPUs, 125 MB (GB/s)",
            ["algorithm", "System I", "System II"],
            rows,
            notes="hierarchical islands lift System II well above the flat\n"
            "ring's PCIe floor; auto matches the best family per system",
        )
        # optimization target: >2x the flat ring on System II, and auto
        # never loses to ring on either system
        assert bw["II"]["auto"] > 2 * bw["II"]["ring"]
        assert bw["II"]["auto"] >= bw["II"]["ring"]
        assert bw["I"]["auto"] >= bw["I"]["ring"]

    def test_auto_never_costlier_than_ring(self, benchmark, record_rows):
        """Selector invariant across the Fig 10 sweep: for every group size
        and payload, the auto-selected algorithm is at most the flat ring's
        simulated time."""
        sizes = [64 * 1024, MB, 8 * MB, 125 * MB]
        groups = [2, 4, 8]

        def run():
            worst = 1.0
            rows = []
            for sys_name, cluster in (("I", system_i()), ("II", system_ii())):
                model = CostModel(cluster)
                for g in groups:
                    for nbytes in sizes:
                        auto = model.allreduce(range(g), nbytes, algorithm="auto")
                        ring = model.allreduce(range(g), nbytes, algorithm="ring")
                        ratio = auto.seconds / ring.seconds
                        worst = max(worst, ratio)
                        rows.append(
                            [sys_name, g, nbytes // 1024, auto.algorithm,
                             f"{ratio:.3f}"]
                        )
            return worst, rows

        worst, rows = benchmark.pedantic(run, rounds=1, iterations=1)
        record_rows(
            "Fig 10d: auto vs ring simulated-time ratio (<= 1 everywhere)",
            ["system", "gpus", "KiB", "chosen", "auto/ring"],
            rows,
        )
        assert worst <= 1.0 + 1e-12
