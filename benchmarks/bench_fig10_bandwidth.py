"""Fig 10: communication bandwidth on Systems I and II (the NCCL
bandwidth-test analogue: broadcasting 125 MB).

(a) pairwise bandwidth between GPU pairs; (b) effective bandwidth of
collective communication over growing GPU groups.

Expected shape: System I sustains the NVLink rate for any pair/group;
System II collapses to PCIe for non-adjacent pairs and for any group
spanning more than one NVLink pair (the paper reports 184 GB/s -> 15 GB/s).
"""

import pytest

from repro.cluster import (
    measure_broadcast_bandwidth,
    measure_p2p_bandwidth,
    system_i,
    system_ii,
)
from repro.utils.units import GB


class TestFig10:
    def test_pair_bandwidth(self, benchmark, record_rows):
        def run():
            out = {}
            for name, cluster in (("I", system_i()), ("II", system_ii())):
                out[name] = {
                    "adjacent (0-1)": measure_p2p_bandwidth(cluster, 0, 1) / GB,
                    "distant (0-2)": measure_p2p_bandwidth(cluster, 0, 2) / GB,
                    "distant (0-7)": measure_p2p_bandwidth(cluster, 0, 7) / GB,
                }
            return out

        bw = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [pair, bw["I"][pair], bw["II"][pair]]
            for pair in bw["I"]
        ]
        record_rows(
            "Fig 10a: p2p bandwidth, 125 MB transfer (GB/s)",
            ["GPU pair", "System I", "System II"],
            rows,
            notes="paper: System II drops from ~184 GB/s to ~15 GB/s for distant pairs",
        )
        assert bw["I"]["adjacent (0-1)"] == pytest.approx(bw["I"]["distant (0-7)"], rel=0.05)
        assert bw["II"]["adjacent (0-1)"] / bw["II"]["distant (0-2)"] > 5

    def test_collective_bandwidth(self, benchmark, record_rows):
        group_sizes = [2, 4, 8]

        def run():
            out = {}
            for name, cluster in (("I", system_i()), ("II", system_ii())):
                out[name] = [
                    measure_broadcast_bandwidth(cluster, list(range(g))) / GB
                    for g in group_sizes
                ]
            return out

        bw = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [f"{g} GPUs", bw["I"][i], bw["II"][i]]
            for i, g in enumerate(group_sizes)
        ]
        record_rows(
            "Fig 10b: broadcast bandwidth over GPU groups, 125 MB (GB/s)",
            ["group", "System I", "System II"],
            rows,
            notes="System II collapses once the group spans a PCIe hop",
        )
        # System I: flat; System II: cliff after the first NVLink pair
        assert bw["I"][2] > 0.8 * bw["I"][0]
        assert bw["II"][0] / bw["II"][2] > 5
