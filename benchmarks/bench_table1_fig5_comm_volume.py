"""Table 1 + Fig 5: communication volume of tensor parallelism.

Measures the wire traffic (elements transferred, summed over ranks) of one
distributed linear layer ``Y = W X`` — forward and backward — under each
tensor-parallel mode, using the communicator's byte counters, and checks
the measurements against the paper's closed forms:

    1D     2(p-1) S_X                   (one all-reduce of dX)
    2D     3(j-1)(S_X + S_W)            (SUMMA broadcasts + reduces)
    2.5D   3(k-1)(S_X + d S_W)          (total over the d depth grids;
                                         the paper's row is per-grid)
    3D     2(l-1)(S_X + S_W + S_Y)      (total; the paper's row is
                                         per-ring-member, i.e. /l)

Fig 5's scaling series (h=1024, s=512, b=32) is tabulated from the same
formulas.
"""

import math

import pytest

from repro.analytic import (
    comm_volume_1d,
    comm_volume_25d,
    comm_volume_2d,
    comm_volume_3d,
    comm_volume_table,
)
from repro.cluster import uniform_cluster
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor

B, S, H = 4, 8, 16  # measured layer (small: volumes are exact counts)
SX = B * S * H
SW = H * H


def _measure(mode: str, p: int, depth: int = 1) -> int:
    """Wire elements of one fwd+bwd of a mode's linear layer over p ranks."""
    rt = SpmdRuntime(uniform_cluster(p))
    tdict = dict(size=p, mode=mode)
    if mode == "2.5d":
        tdict["depth"] = depth

    def prog(ctx):
        pc = ParallelContext(ctx, Config.from_dict(dict(parallel=dict(tensor=tdict))))
        if mode == "1d":
            from repro.parallel.tensor1d import ColumnParallelLinear

            lin = ColumnParallelLinear(H, H, pc.comm(ParallelMode.TENSOR), bias=False)
            x = Tensor(SpecArray((B, S, H)), requires_grad=True)
        elif mode == "2d":
            from repro.parallel.tensor2d import Linear2D

            q = pc.summa_dim
            lin = Linear2D(H, H, pc, bias=False)
            x = Tensor(SpecArray((B // q, S, H // q)), requires_grad=True)
        elif mode == "2.5d":
            from repro.parallel.tensor25d import Linear25D

            q, d = pc.tesseract_dim, pc.tesseract_dep
            lin = Linear25D(H, H, pc, bias=False)
            x = Tensor(SpecArray((B // (d * q), S, H // q)), requires_grad=True)
        else:  # 3d
            from repro.parallel.tensor3d import LAYOUT_JK, Linear3D

            l = pc.cubic_dim
            lin = Linear3D(H, H, pc, LAYOUT_JK, bias=False)
            x = Tensor(SpecArray((B // (l * l), S, H // l)), requires_grad=True)
        lin(x).sum().backward()

    rt.run(prog, materialize=False)
    return sum(g.counters.elements_total for g in rt._groups.values())


class TestTable1:
    def test_1d_exact(self, benchmark, record_rows):
        def run():
            return {p: _measure("1d", p) for p in (2, 4, 8)}

        measured = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for p, m in measured.items():
            expect = comm_volume_1d(p, B, S, H)
            rows.append([f"1D p={p}", m, int(expect), m / expect])
            assert m == expect
        record_rows(
            "Table 1 (1D): measured vs 2(p-1)S_X",
            ["mode", "measured elems", "formula", "ratio"],
            rows,
        )

    def test_2d_exact(self, benchmark, record_rows):
        def run():
            return {p: _measure("2d", p) for p in (4, 16)}

        measured = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for p, m in measured.items():
            expect = comm_volume_2d(p, B, S, H)
            rows.append([f"2D p={p}", m, int(expect), m / expect])
            assert m == expect
        record_rows(
            "Table 1 (2D): measured vs 3(j-1)(S_X+S_W)",
            ["mode", "measured elems", "formula", "ratio"],
            rows,
        )

    def test_25d_total_convention(self, benchmark, record_rows):
        def run():
            return {(8, 2): _measure("2.5d", 8, depth=2)}

        measured = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for (p, d), m in measured.items():
            k = math.isqrt(p // d)
            total_form = 3 * (k - 1) * (SX + d * SW)
            paper_form = comm_volume_25d(p, B, S, H, d)
            rows.append([f"2.5D p={p} d={d}", m, total_form, int(paper_form)])
            assert m == total_form
        record_rows(
            "Table 1 (2.5D): measured vs total form 3(k-1)(S_X + d*S_W)",
            ["mode", "measured elems", "total formula", "paper (per-grid) 3(k-1)(S_X/d+S_W)"],
            rows,
            notes="paper's row counts one depth grid; measured = d x paper row",
        )

    def test_3d_total_convention(self, benchmark, record_rows):
        def run():
            return {8: _measure("3d", 8)}

        measured = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for p, m in measured.items():
            l = round(p ** (1 / 3))
            total_form = 2 * (l - 1) * (SX + SW + SX)  # S_Y = S_X here
            paper_form = comm_volume_3d(p, B, S, H)
            rows.append([f"3D p={p}", m, total_form, int(paper_form)])
            assert m == total_form
        record_rows(
            "Table 1 (3D): measured vs total form 2(l-1)(S_X+S_W+S_Y)",
            ["mode", "measured elems", "total formula", "paper (per-member) form"],
            rows,
            notes="paper's row is per ring member; measured = l x paper row",
        )


class TestFig5Scaling:
    def test_scaling_series(self, benchmark, record_rows):
        """Fig 5 parameters: h=1024, s=512, b=32; p from 4 to 64."""

        def run():
            return comm_volume_table([4, 8, 16, 32, 64], b=32, s=512, h=1024, depth=2)

        rows_raw = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for r in rows_raw:
            rows.append(
                [
                    int(r["p"]),
                    r["1d"] / 1e6,
                    r["2d"] / 1e6 if not math.isnan(r["2d"]) else "-",
                    r["2.5d"] / 1e6 if not math.isnan(r["2.5d"]) else "-",
                    r["3d"] / 1e6 if not math.isnan(r["3d"]) else "-",
                ]
            )
        record_rows(
            "Fig 5: comm volume scaling (10^6 elements, h=1024 s=512 b=32)",
            ["p", "1D", "2D", "2.5D(d=2)", "3D"],
            rows,
            notes="advanced TP volume grows ~sqrt/cbrt(p) vs linear for 1D",
        )
        # the paper's claim: the gap widens with p
        r4 = rows_raw[0]
        r64 = rows_raw[-1]
        assert r64["1d"] / r64["2d"] > r4["1d"] / r4["2d"]
        assert r64["3d"] < r64["1d"]
